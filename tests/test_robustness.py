"""Fault-injection and graceful-degradation tests.

The robustness contract (configuration-scoped error confinement):

* a preprocessor failure under a non-TRUE presence condition is
  recorded and pruned — the pipeline keeps going and the failing
  configurations join ``invalid_configs``;
* a failure under the TRUE condition (every configuration affected)
  stays a hard error;
* the parser degrades instead of dying: the kill switch sheds forks,
  resource budgets trip into partial results, and ``SuperCResult``
  reports ``status == "degraded"`` with condition-scoped diagnostics;
* the batch scheduler paces retries deterministically and abandons
  crash-looping units instead of retrying forever.
"""

import os

import pytest

from repro.cpp import DictFileSystem, PreprocessorError
from repro.cpp.conditions import defined_var
from repro.engine import (BatchEngine, CorpusJob, EngineConfig,
                          STATUS_CRASHED)
from repro.errors import (Diagnostic, PHASE_CONDITION, PHASE_EXPANSION,
                          PHASE_INCLUDE, PHASE_LEX, PHASE_PARSE,
                          PHASE_RESOURCE, ResourceBudget,
                          SEVERITY_CONFIG, serialize_diagnostics)
from repro.parser.fmlr import (FMLROptions, OPTIMIZATION_LEVELS,
                               SubparserExplosion)
from repro.qa import DifferentialChecker
from repro.superc import (STATUS_DEGRADED, STATUS_OK,
                          STATUS_PARSE_FAILED, SuperC)

BUILTINS = {"__STDC__": "1"}


def parse(text, files=None, include_paths=("include",), budget=None,
          options=None):
    superc = SuperC(DictFileSystem(files or {}),
                    include_paths=include_paths, builtins=BUILTINS,
                    budget=budget, options=options)
    return superc.parse_source(text, "unit.c")


def defined(manager, name):
    return manager.var(defined_var(name))


# ---------------------------------------------------------------------------
# the acceptance unit: three distinct guarded failure classes, one AST
# ---------------------------------------------------------------------------

ACCEPTANCE_SOURCE = """\
#ifdef CONFIG_NET
#include "no_such_header.h"
#endif

#ifdef CONFIG_USB
#if (
int usb_never;
#endif
#endif

#ifdef CONFIG_SND
#error "sound is unsupported in this tree"
#endif

#ifdef CONFIG_SMP
int nr_cpus = 8;
#else
int nr_cpus = 1;
#endif

#ifdef CONFIG_DEBUG
int verbose = 1;
#endif

int always_here(void)
{
    return nr_cpus;
}
"""


class TestAcceptanceUnit:
    def test_single_ast_with_exactly_three_error_conditions(self):
        result = parse(ACCEPTANCE_SOURCE)
        # One AST despite three distinct guarded failures.
        assert result.ast is not None
        assert result.parse.accepted
        assert result.status == STATUS_DEGRADED
        manager = result.unit.manager
        expected = (defined(manager, "CONFIG_NET")
                    | defined(manager, "CONFIG_USB")
                    | defined(manager, "CONFIG_SND"))
        assert result.invalid_configs.equiv(expected).is_true()
        # One diagnostic per failure class, each correctly phased.
        phases = sorted(d.phase for d in result.unit.diagnostics)
        assert phases == [PHASE_CONDITION, PHASE_INCLUDE, "preprocess"]
        assert all(d.severity == SEVERITY_CONFIG
                   for d in result.unit.diagnostics)

    def test_error_agreement_with_oracle_over_16_configs(self):
        checker = DifferentialChecker(files={}, include_paths=(),
                                      max_configs=20)
        outcome = checker.check_source(ACCEPTANCE_SOURCE,
                                       "acceptance.c", seed=3)
        assert outcome.configs_checked >= 16
        assert outcome.disagreements == []
        assert outcome.superc_status == STATUS_DEGRADED

    def test_diagnostics_serialize(self):
        result = parse(ACCEPTANCE_SOURCE)
        records = serialize_diagnostics(result.diagnostics)
        assert len(records) == 3
        for record in records:
            assert set(record) == {"condition", "severity", "phase",
                                   "message", "origin"}
            assert record["severity"] == SEVERITY_CONFIG


# ---------------------------------------------------------------------------
# per-error-class confinement regressions
# ---------------------------------------------------------------------------

class TestConfinementByClass:
    def assert_confined(self, result, variable):
        manager = result.unit.manager
        assert result.status == STATUS_DEGRADED
        assert result.parse.accepted
        assert result.invalid_configs.equiv(
            defined(manager, variable)).is_true()

    def test_bad_if_expression(self):
        result = parse("#ifdef CONFIG_A\n#if 1 +\nint x;\n#endif\n"
                       "#endif\nint y;\n")
        self.assert_confined(result, "CONFIG_A")
        assert result.unit.diagnostics[0].phase == PHASE_CONDITION

    def test_bad_if_expression_at_true_is_fatal(self):
        with pytest.raises(PreprocessorError):
            parse("#if 1 +\nint x;\n#endif\nint y;\n")

    def test_division_by_zero_in_guarded_if(self):
        result = parse("#ifdef CONFIG_A\n#if 8 / 0\nint x;\n#endif\n"
                       "#endif\nint y;\n")
        self.assert_confined(result, "CONFIG_A")

    def test_missing_include(self):
        result = parse('#ifdef CONFIG_A\n#include "gone.h"\n#endif\n'
                       "int y;\n")
        self.assert_confined(result, "CONFIG_A")
        assert result.unit.diagnostics[0].phase == PHASE_INCLUDE

    def test_missing_include_at_true_is_fatal(self):
        with pytest.raises(PreprocessorError):
            parse('#include "gone.h"\nint y;\n')

    def test_computed_include_per_branch(self):
        files = {"include/real.h": "int from_real;\n"}
        result = parse("#ifdef CONFIG_A\n"
                       '#define HDR "phantom.h"\n'
                       "#else\n"
                       '#define HDR <real.h>\n'
                       "#endif\n"
                       "#include HDR\n"
                       "int y;\n", files=files)
        # Only the CONFIG_A branch's include fails; the other branch's
        # header is processed.
        self.assert_confined(result, "CONFIG_A")

    def test_malformed_ifdef(self):
        result = parse("#ifdef CONFIG_A\n#ifdef\nint x;\n#endif\n"
                       "#endif\nint y;\n")
        self.assert_confined(result, "CONFIG_A")

    def test_malformed_define(self):
        result = parse("#ifdef CONFIG_A\n#define\n#endif\nint y;\n")
        self.assert_confined(result, "CONFIG_A")

    def test_malformed_undef(self):
        result = parse("#ifdef CONFIG_A\n#undef\n#endif\nint y;\n")
        self.assert_confined(result, "CONFIG_A")

    def test_macro_arity_error_in_guarded_branch(self):
        result = parse("#define TWO(a, b) ((a) + (b))\n"
                       "#ifdef CONFIG_A\n"
                       "int bad = TWO(1);\n"
                       "#else\n"
                       "int good = 0;\n"
                       "#endif\n")
        manager = result.unit.manager
        assert result.status == STATUS_DEGRADED
        assert any(d.phase == PHASE_EXPANSION
                   for d in result.unit.diagnostics)
        assert not result.invalid_configs.is_false()
        assert (result.invalid_configs
                & ~defined(manager, "CONFIG_A")).is_false()

    def test_macro_arity_error_at_true_is_fatal(self):
        with pytest.raises(PreprocessorError):
            parse("#define TWO(a, b) ((a) + (b))\nint bad = TWO(1);\n")

    def test_bad_token_paste_in_guarded_branch(self):
        result = parse("#define CAT(a, b) a ## b\n"
                       "#ifdef CONFIG_A\n"
                       "int bad = CAT(1, ==);\n"
                       "#else\n"
                       "int good = 0;\n"
                       "#endif\n")
        assert result.status == STATUS_DEGRADED
        assert any(d.phase == PHASE_EXPANSION
                   for d in result.unit.diagnostics)

    def test_include_cycle_under_condition(self):
        files = {"include/loop.h": '#include "loop.h"\n'}
        result = parse('#ifdef CONFIG_A\n#include "loop.h"\n#endif\n'
                       "int y;\n", files=files,
                       budget=ResourceBudget(max_include_depth=8))
        self.assert_confined(result, "CONFIG_A")
        assert any("include depth" in d.message
                   for d in result.unit.diagnostics)

    def test_deep_include_chain_under_condition(self):
        files = {f"include/d{i}.h": f'#include "d{i + 1}.h"\n'
                 for i in range(10)}
        files["include/d10.h"] = "int bottom;\n"
        result = parse('#ifdef CONFIG_DEEP\n#include "d0.h"\n#endif\n'
                       "int y;\n", files=files,
                       budget=ResourceBudget(max_include_depth=4))
        self.assert_confined(result, "CONFIG_DEEP")

    def test_broken_header_lexing_under_condition(self):
        # The header dies in the lexer (unterminated literal): an
        # include failure of the guarded include site, not a crash.
        files = {"include/broken.h": 'const char *s = "open;\n'}
        result = parse('#ifdef CONFIG_A\n#include "broken.h"\n#endif\n'
                       "int y;\n", files=files)
        self.assert_confined(result, "CONFIG_A")
        assert result.unit.diagnostics[0].phase == PHASE_LEX


# ---------------------------------------------------------------------------
# monkeypatched fault injection deeper in the pipeline
# ---------------------------------------------------------------------------

class TestInjectedFaults:
    def test_hoist_failure_is_confined(self, monkeypatch):
        import repro.cpp.preprocessor as pp_mod
        real_hoist = pp_mod.hoist

        def exploding_hoist(condition, tokens):
            if not condition.is_true():
                raise PreprocessorError("injected hoist failure")
            return real_hoist(condition, tokens)

        monkeypatch.setattr(pp_mod, "hoist", exploding_hoist)
        result = parse("#ifdef CONFIG_A\n#if FOO\nint x;\n#endif\n"
                       "#endif\nint y;\n")
        manager = result.unit.manager
        assert result.status == STATUS_DEGRADED
        assert result.parse.accepted
        assert result.invalid_configs.equiv(
            defined(manager, "CONFIG_A")).is_true()
        assert any("injected hoist failure" in d.message
                   for d in result.unit.diagnostics)

    def test_resolver_failure_is_confined(self, monkeypatch):
        from repro.cpp.includes import IncludeResolver

        def failing_resolve(self, name, quoted, includer):
            raise PreprocessorError(
                f"injected resolver failure for {name!r}")

        monkeypatch.setattr(IncludeResolver, "resolve", failing_resolve)
        result = parse('#ifdef CONFIG_A\n#include "h.h"\n#endif\n'
                       "int y;\n", files={"include/h.h": "int h;\n"})
        manager = result.unit.manager
        assert result.status == STATUS_DEGRADED
        assert result.invalid_configs.equiv(
            defined(manager, "CONFIG_A")).is_true()

    def test_resolver_failure_at_true_is_fatal(self, monkeypatch):
        from repro.cpp.includes import IncludeResolver

        def failing_resolve(self, name, quoted, includer):
            raise PreprocessorError("injected resolver failure")

        monkeypatch.setattr(IncludeResolver, "resolve", failing_resolve)
        with pytest.raises(PreprocessorError):
            parse('#include "h.h"\nint y;\n',
                  files={"include/h.h": "int h;\n"})

    def test_expansion_failure_is_confined(self, monkeypatch):
        from repro.cpp.expansion import Expander
        real = Expander._subst_object

        def failing_subst(self, entry, head):
            if entry.name == "POISON":
                raise PreprocessorError("injected expansion failure",
                                        head)
            return real(self, entry, head)

        monkeypatch.setattr(Expander, "_subst_object", failing_subst)
        result = parse("#define POISON 1\n"
                       "#ifdef CONFIG_A\n"
                       "int bad = POISON;\n"
                       "#else\n"
                       "int good = 0;\n"
                       "#endif\n")
        assert result.status == STATUS_DEGRADED
        assert any("injected expansion failure" in d.message
                   for d in result.unit.diagnostics)


# ---------------------------------------------------------------------------
# parser degradation: kill switch and resource budgets
# ---------------------------------------------------------------------------

def mapr_options(kill_switch, hard=False):
    base = OPTIMIZATION_LEVELS["MAPR"]
    return FMLROptions(follow_set=base.follow_set,
                       lazy_shifts=base.lazy_shifts,
                       shared_reduces=base.shared_reduces,
                       early_reduces=base.early_reduces,
                       mapr_largest_first=base.mapr_largest_first,
                       choice_merging=base.choice_merging,
                       kill_switch=kill_switch,
                       hard_kill_switch=hard)


def explosive_source(n=10):
    lines = []
    for i in range(n):
        lines += [f"#ifdef CONFIG_F{i}", f"int f{i} = {i};", "#endif"]
    lines.append("int tail;")
    return "\n".join(lines) + "\n"


class TestParserDegradation:
    def test_soft_kill_switch_no_explosion_escapes(self):
        result = parse(explosive_source(), options=mapr_options(24))
        assert result.status in (STATUS_DEGRADED, STATUS_PARSE_FAILED)
        assert result.parse.stats.kill_switch_trips >= 1
        assert result.parse.stats.dropped_subparsers > 0
        assert any(d.phase == PHASE_PARSE
                   for d in result.parse.diagnostics)
        assert not result.invalid_configs.is_false()

    def test_hard_kill_switch_still_raises(self):
        with pytest.raises(SubparserExplosion):
            parse(explosive_source(),
                  options=mapr_options(24, hard=True))

    def test_bdd_node_budget_trips_to_partial_result(self):
        result = parse(explosive_source(6),
                       budget=ResourceBudget(max_bdd_nodes=1))
        assert result.status == STATUS_DEGRADED
        assert any(d.phase == PHASE_RESOURCE
                   for d in result.parse.diagnostics)

    def test_token_budget_skips_parse(self):
        result = parse("int a;\nint b;\nint c;\n",
                       budget=ResourceBudget(max_tokens=2))
        assert result.status == STATUS_DEGRADED
        assert result.timing.parse == 0.0
        diag = result.parse.diagnostics[0]
        assert diag.phase == PHASE_RESOURCE
        assert "token budget" in diag.message
        # The whole feasible space was degraded away.
        assert result.invalid_configs.is_true()

    def test_ok_unit_stays_ok_under_generous_budget(self):
        result = parse("#ifdef CONFIG_A\nint a;\n#endif\nint b;\n",
                       budget=ResourceBudget(max_bdd_nodes=10 ** 6,
                                             max_tokens=10 ** 6))
        assert result.status == STATUS_OK
        assert result.invalid_configs.is_false()
        assert result.diagnostics == []


# ---------------------------------------------------------------------------
# scheduler robustness: backoff determinism and the circuit breaker
# ---------------------------------------------------------------------------

BAD_UNIT_ENV = "REPRO_ROBUSTNESS_TEST_BAD_UNIT"


def always_raising_hook(unit):
    if os.environ.get(BAD_UNIT_ENV) == unit:
        raise RuntimeError("injected crash loop")


class TestScheduler:
    def test_backoff_is_deterministic(self):
        config = dict(backoff_base=0.05, backoff_factor=2.0,
                      backoff_max=2.0, backoff_jitter=0.5,
                      backoff_seed=7)
        a = BatchEngine(EngineConfig(**config))
        b = BatchEngine(EngineConfig(**config))
        delays = [a._backoff_delay(wave) for wave in range(2, 9)]
        assert delays == [b._backoff_delay(w) for w in range(2, 9)]
        # Exponential growth up to the cap (jitter <= 50% cannot
        # reorder consecutive doublings).
        assert all(later >= earlier for earlier, later
                   in zip(delays, delays[1:]))
        assert max(delays) <= 2.0 * 1.5

    def test_backoff_disabled(self):
        engine = BatchEngine(EngineConfig(backoff_base=0))
        assert engine._backoff_delay(5) == 0.0

    def test_crash_loop_circuit_breaker(self, tmp_path, monkeypatch):
        job = CorpusJob(["good.c", "bad.c"],
                        files={"good.c": "int ok;\n",
                               "bad.c": "int also_ok;\n"})
        monkeypatch.setenv(BAD_UNIT_ENV, "bad.c")
        config = EngineConfig(
            retries=5, crash_loop_threshold=2, backoff_base=0,
            cache_dir=str(tmp_path / "cache"), use_result_cache=False,
            fault_hook="tests.test_robustness:always_raising_hook")
        report = BatchEngine(config).run(job)
        statuses = report.statuses()
        assert statuses["good.c"] == STATUS_OK
        assert statuses["bad.c"] == STATUS_CRASHED
        record = [r for r in report.records if r["unit"] == "bad.c"][0]
        # Tripped at the threshold, not after the full retry budget.
        assert record["attempt"] == 2
        assert "circuit breaker" in record["error"]
        assert not report.all_ok

    def test_crashed_units_stay_uncached(self, tmp_path, monkeypatch):
        job = CorpusJob(["bad.c"], files={"bad.c": "int x;\n"})
        monkeypatch.setenv(BAD_UNIT_ENV, "bad.c")
        config = EngineConfig(
            retries=5, crash_loop_threshold=2, backoff_base=0,
            cache_dir=str(tmp_path / "cache"),
            fault_hook="tests.test_robustness:always_raising_hook")
        BatchEngine(config).run(job)
        # Second run without the fault: the unit must be re-attempted
        # (and now succeed) rather than answered "crashed" from cache.
        monkeypatch.delenv(BAD_UNIT_ENV)
        warm = BatchEngine(config).run(job)
        record = warm.records[0]
        assert record["cache"] == "miss"
        assert record["status"] == STATUS_OK


# ---------------------------------------------------------------------------
# end to end: guarded-failure fuzzing stays degraded, never crashed
# ---------------------------------------------------------------------------

class TestGuardedFuzz:
    def test_guarded_failures_degrade_not_crash(self):
        from repro.corpus.fuzz import FuzzSpec
        from repro.qa import run_fuzz
        spec = FuzzSpec(variables=3, items=6,
                        weights={"guarded_error": 4,
                                 "guarded_missing_include": 3})
        fuzz = run_fuzz(units=4, seed=0, spec=spec, workers=1,
                        do_shrink=False)
        assert fuzz.clean
        assert set(fuzz.report.by_status) <= {"ok", "degraded"}
        # With heavy guarded-failure weights, confinement must have
        # fired on at least one unit.
        assert fuzz.report.by_status.get("degraded", 0) >= 1
