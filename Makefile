# Developer/CI entry points.  PYTHONPATH=src keeps everything runnable
# without installation.
PY := PYTHONPATH=src python

.PHONY: test smoke-batch bench clean-cache

# Tier 1: the full unit-test suite (must stay green).
test:
	$(PY) -m pytest -x -q

# Tier 2: batch-engine smoke — generate the synthetic kernel corpus,
# fan it out over 2 workers with a deadline and retries, and require
# every unit to parse.  Catches engine/scheduler regressions in
# seconds without running the full benchmarks.
smoke-batch:
	$(PY) -m repro.tools.batch_cli --generate --seed 42 \
	    --workers 2 --timeout 60 --retries 1 --no-result-cache \
	    --metrics -

# Full benchmark suite (Tables 2-3, Figures 8-10, scaling + speedup).
bench:
	$(PY) -m pytest benchmarks -q

# Persistent caches (grammar tables, batch results) are derived data.
clean-cache:
	rm -rf $${REPRO_CACHE_DIR:-$$HOME/.cache/repro-superc}
