"""Shared helpers for preprocessor and parser tests.

The central facility is the *differential oracle*: build a BDD-variable
assignment from a concrete configuration (a ``-D`` style mapping), so a
configuration-preserving result can be projected and compared against
the plain single-configuration pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cpp import (DictFileSystem, Preprocessor, SimplePreprocessor,
                       project)
from repro.cpp.conditions import DEFINED_PREFIX, EXPR_PREFIX, VALUE_PREFIX
from repro.cpp.expression import (ExprError, evaluate_int, parse_int,
                                  parse_expression)
from repro.lexer import lex
from repro.lexer.tokens import Token, TokenKind

# A tiny, fixed builtin set for tests (deterministic, minimal noise).
TEST_BUILTINS = {"__STDC__": "1"}


def preprocess(text: str, files: Optional[Dict[str, str]] = None,
               include_paths: Sequence[str] = ("include",),
               builtins: Optional[Dict[str, str]] = None,
               filename: str = "test.c"):
    """Run the configuration-preserving preprocessor on ``text``."""
    pp = Preprocessor(DictFileSystem(files or {}),
                      include_paths=include_paths,
                      builtins=TEST_BUILTINS if builtins is None
                      else builtins)
    return pp.preprocess(text, filename)


def simple_preprocess(text: str, defines: Optional[Dict[str, str]] = None,
                      files: Optional[Dict[str, str]] = None,
                      include_paths: Sequence[str] = ("include",),
                      builtins: Optional[Dict[str, str]] = None,
                      filename: str = "test.c") -> List[Token]:
    """Run the single-configuration oracle preprocessor."""
    pp = SimplePreprocessor(DictFileSystem(files or {}),
                            include_paths=include_paths,
                            config=defines or {},
                            builtins=TEST_BUILTINS if builtins is None
                            else builtins)
    return pp.preprocess(text, filename)


def texts(tokens) -> List[str]:
    """Token texts, skipping layout-only kinds."""
    return [t.text for t in tokens
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


def config_value(defines: Dict[str, str], name: str) -> int:
    """The integer value a bare identifier evaluates to under a
    configuration (0 when undefined or non-numeric)."""
    if name not in defines:
        return 0
    body = defines[name].strip()
    if not body:
        return 0
    try:
        return parse_int(body)
    except ExprError:
        return 0


def assignment_for(unit, defines: Dict[str, str]) -> Dict[str, bool]:
    """Translate a concrete configuration into truth values for every
    BDD variable the unit's conditions mention."""
    assignment: Dict[str, bool] = {}
    for var in unit.manager.variable_names:
        if var.startswith(DEFINED_PREFIX):
            name = var[len(DEFINED_PREFIX):]
            assignment[var] = name in defines
        elif var.startswith(VALUE_PREFIX):
            name = var[len(VALUE_PREFIX):]
            assignment[var] = config_value(defines, name) != 0
        elif var.startswith(EXPR_PREFIX):
            text = var[len(EXPR_PREFIX):]
            expr = parse_expression(lex(text, "<expr-var>"))
            value = evaluate_int(
                expr,
                is_defined=lambda n: n in defines,
                value_of=lambda n: config_value(defines, n))
            assignment[var] = value != 0
    return assignment


def project_unit(unit, defines: Dict[str, str]) -> List[Token]:
    """Project a compilation unit onto one concrete configuration."""
    return project(unit.tree, assignment_for(unit, defines))


def token_texts_match(left: Sequence[Token],
                      right: Sequence[Token]) -> bool:
    """Compare two token streams by (kind, text)."""
    left = [t for t in left
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
    right = [t for t in right
             if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
    if len(left) != len(right):
        return False
    return all(a.same_text(b) for a, b in zip(left, right))


def ast_signature(value) -> object:
    """Structural signature of an AST for cross-parse comparison
    (tokens compare by identity, so `==` fails across parses)."""
    from repro.parser.ast import Node, StaticChoice
    if value is None:
        return None
    if isinstance(value, Token):
        return ("tok", value.kind.value, value.text)
    if isinstance(value, Node):
        return ("node", value.name,
                tuple(ast_signature(c) for c in value.children))
    if isinstance(value, StaticChoice):
        return ("choice",
                frozenset((c.to_expr_string(), ast_signature(v))
                          for c, v in value.branches))
    if isinstance(value, tuple):
        return ("list", tuple(ast_signature(v) for v in value))
    return ("other", repr(value))


def diff_token_streams(left: Sequence[Token],
                       right: Sequence[Token]) -> str:
    """Human-readable diff for assertion messages."""
    left_texts = [t.text for t in left]
    right_texts = [t.text for t in right]
    for index, (a, b) in enumerate(zip(left_texts, right_texts)):
        if a != b:
            return (f"first difference at #{index}: {a!r} != {b!r}\n"
                    f"left:  ... {' '.join(left_texts[max(0, index-5):index+5])}\n"
                    f"right: ... {' '.join(right_texts[max(0, index-5):index+5])}")
    return (f"length mismatch: {len(left_texts)} vs {len(right_texts)}\n"
            f"left tail:  {' '.join(left_texts[-8:])}\n"
            f"right tail: {' '.join(right_texts[-8:])}")
