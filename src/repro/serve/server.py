"""The parse daemon: service logic and the socket front end.

**Protocol.**  Op semantics, the typed request model, the status
taxonomy, and the response envelope all live in
:mod:`repro.serve.protocol` — this module dispatches protocol objects,
it does not define the dialect.  The socket transport speaks
newline-delimited JSON over a Unix-domain socket or TCP: each request
is one JSON object on one line; each response is one JSON object on
one line carrying the request's ``id`` back.  Requests may be
pipelined — the server reads ahead and admission control decides per
request — and responses to shed requests can overtake responses to
admitted ones (match on ``id``).  The HTTP transport
(:mod:`repro.serve.http`) rides the same queue and dispatchers through
:meth:`ParseServer.submit_request`.

Request shapes (``op`` selects the type)::

    {"id": 1, "op": "parse", "path": "drivers/mousedev.c"}
    {"id": 2, "op": "parse", "text": "int x;", "filename": "<buf>"}
    {"id": 3, "op": "invalidate", "path": "include/major.h"}
    {"id": 4, "op": "invalidate", "path": "a.h", "text": "#define A"}
    {"id": 5, "op": "stats"}
    {"id": 6, "op": "shutdown"}

``parse`` extras: ``deadline`` (seconds, overrides the server
default), ``fresh`` (true skips every cache tier), ``delay`` (testing
aid: sleep before parsing, so smoke tests can pile up a burst
deterministically).

Parse responses carry the structural Result protocol as JSON —
``status``, ``diagnostics``, ``timing``, ``profile`` — in the same
record shape the batch engine emits, plus serve-side fields::

    {"id": 1, "op": "parse", "status": "ok", "cache": "hit",
     "tier": "memory", "serve": {"queue_seconds": ..., "seconds": ...},
     "timing": {...}, "diagnostics": [...], "profile": ..., ...}

Overload answers ``{"status": "shed", "error": "queue depth ..."}``
immediately; a server past ``shutdown`` answers new work with
``status=shed`` too (``"draining"``), while everything admitted before
the shutdown is still served (graceful drain).

**Architecture.**  The acceptor and per-connection readers are
daemon threads that only do admission (cheap, never parse); all
parsing happens on the single thread that called
:meth:`ParseServer.serve_forever` — the process's main thread under
the CLI, which is exactly what lets per-request deadlines reuse the
engine's SIGALRM :func:`repro.engine.attempt_deadline`.  Off the main
thread (e.g. tests embedding the server in a thread) deadlines degrade
to admission-time expiry checks.

Every request is observable: a ``serve.request`` span per request
(lane-per-request in the Chrome export), ``serve.requests`` /
``serve.cache.hit`` / ``serve.cache.miss`` / ``serve.shed`` counters,
and the ``serve.queue_depth`` histogram.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro import chaos
from repro.api import Config
from repro.engine import DEFAULT_OPTIMIZATION, DeadlineExceeded, \
    attempt_deadline
from repro.obs.tracer import NULL_TRACER
from repro.serve import protocol
from repro.serve.admission import AdmissionQueue, Deadline, QueueClosed
from repro.serve.pool import PoolConfig, WorkerPool
from repro.serve.protocol import (OPS, PROTOCOL_VERSION, STATUS_SHED,
                                  InvalidateRequest, ParseRequest,
                                  PingRequest, ProtocolError, Request,
                                  ShutdownRequest, StatsRequest)
from repro.serve.state import ServerState


class ParseService:
    """Transport-independent request handler over warm server state.

    ``handle(request) -> response`` implements every op synchronously
    over one dispatch table keyed by protocol request type; the
    transports add queueing, deadlines, and shedding around it.  Raw
    wire payloads (dicts) are accepted and validated through
    :func:`repro.serve.protocol.decode_request`, so tests and
    in-process embedders can call it directly.
    """

    def __init__(self, state: ServerState, tracer: Any = None):
        self.state = state
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pool: Optional[WorkerPool] = None
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.started = time.monotonic()
        # The one dispatch table: protocol request type -> handler.
        self._handlers: Dict[type, Callable[..., dict]] = {
            ParseRequest: self._op_parse,
            InvalidateRequest: self._op_invalidate,
            StatsRequest: self._op_stats,
            PingRequest: self._op_ping,
            ShutdownRequest: self._op_shutdown,
        }

    # -- dispatch ------------------------------------------------------

    def handle(self, request: Union[dict, Request],
               deadline: Optional[Deadline] = None) -> dict:
        if not isinstance(request, Request):
            try:
                request = protocol.decode_request(request)
            except ProtocolError as exc:
                self._count_request()
                return protocol.error_reply(exc.request_id, exc.op,
                                            str(exc))
        self._count_request()
        handler = self._handlers[type(request)]
        try:
            if isinstance(request, ParseRequest):
                # The one op with a deadline: under a worker pool the
                # supervisor enforces it against the child process.
                return handler(request, deadline=deadline)
            return handler(request)
        except DeadlineExceeded:
            raise
        except Exception as exc:  # confine: a bad request never kills
            return protocol.error_reply(request.id, request.op,
                                        repr(exc))

    def _count_request(self) -> None:
        self.requests += 1
        if self.tracer.enabled:
            self.tracer.count("serve.requests")

    # -- ops -----------------------------------------------------------

    def _op_ping(self, request: PingRequest) -> dict:
        return protocol.reply(request.id, request.op, status="ok",
                              protocol=PROTOCOL_VERSION)

    def _op_parse(self, request: ParseRequest,
                  deadline: Optional[Deadline] = None) -> dict:
        state = self.state
        if request.delay > 0:  # testing aid — smoke tests build backlog
            time.sleep(request.delay)
        text = request.text
        if text is None:
            text = state.files.read(request.path)
            if text is None:
                return protocol.error_reply(
                    request.id, request.op,
                    f"cannot read {request.path}")
        elif request.path is not None:
            # An explicit buffer for a known path is an overlay edit.
            state.files.put(request.path, text)
            state.index.mark_dirty()
        unit = request.unit
        with self.tracer.span("serve.request", op="parse", unit=unit):
            key, _closure_digest, members = state.unit_key(unit, text)
            record: Optional[dict] = None
            tier: Optional[str] = None
            if not request.fresh:
                record, tier = state.lookup(unit, key, members)
            if record is not None:
                self.hits += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.cache.hit")
                record = dict(record)
                record["cache"] = "hit"
            else:
                self.misses += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.cache.miss")
                record = dict(state.parse(unit, text, key, members,
                                          deadline=deadline))
                record["cache"] = "miss"
                tier = None
        return protocol.reply(request.id, request.op, tier=tier,
                              **record)

    def _op_invalidate(self, request: InvalidateRequest) -> dict:
        with self.tracer.span("serve.request", op="invalidate",
                              path=request.path):
            dropped = self.state.invalidate(request.path, request.text)
            if self.tracer.enabled:
                self.tracer.count("serve.invalidated", len(dropped))
        return protocol.reply(request.id, request.op, status="ok",
                              invalidated=dropped, count=len(dropped))

    def _op_stats(self, request: StatsRequest) -> dict:
        stats = {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "requests": self.requests,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
        }
        stats.update(self.state.stats())
        stats["pool"] = (None if self.pool is None
                         else self.pool.stats())
        return protocol.reply(request.id, request.op, status="ok",
                              stats=stats)

    def _op_shutdown(self, request: ShutdownRequest) -> dict:
        # The socket server intercepts shutdown for draining; handled
        # directly (in-process use) it just acknowledges.
        return protocol.reply(request.id, request.op, status="ok",
                              draining=True)


class _Connection:
    """One client connection: buffered line reader + locked writer."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._recv_buffer = b""
        self._write_lock = threading.Lock()
        self.closed = False

    def read_request(self) -> Optional[dict]:
        """Next newline-delimited JSON object, or None at EOF."""
        while b"\n" not in self._recv_buffer:
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._recv_buffer += chunk
        line, _sep, rest = self._recv_buffer.partition(b"\n")
        self._recv_buffer = rest
        if not line.strip():
            return self.read_request()
        return json.loads(line.decode("utf-8"))

    def send(self, response: dict) -> None:
        payload = (json.dumps(response) + "\n").encode("utf-8")
        with self._write_lock:
            if self.closed:
                return
            try:
                if chaos.ACTIVE is not None:
                    # "drop-conn" closes the socket under us here —
                    # the client sees a torn connection mid-response.
                    chaos.fire("conn.send", sock=self.sock)
                self.sock.sendall(payload)
            except OSError:
                self.closed = True

    def close(self) -> None:
        with self._write_lock:
            self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class _ResponseSlot:
    """Connection stand-in for a blocking external transport.

    An HTTP handler thread (or any in-process waiter) admits its
    request with a slot as the "connection"; the dispatcher's
    ``send()`` then hands the response straight to the waiting thread
    instead of a socket.  ``close()`` (server teardown) releases the
    waiter with a structured ``unavailable`` answer so no transport
    thread can hang on a dead dispatcher.
    """

    __slots__ = ("response", "_event")

    def __init__(self):
        self.response: Optional[dict] = None
        self._event = threading.Event()

    def send(self, response: dict) -> None:
        self.response = response
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def close(self) -> None:
        if not self._event.is_set():
            self.response = protocol.reply(
                None, None, status=protocol.STATUS_UNAVAILABLE,
                error="server stopped before answering")
            self._event.set()


class _QueuedRequest:
    """An admitted request waiting for the worker."""

    __slots__ = ("request", "connection", "deadline", "admitted",
                 "shutdown")

    def __init__(self, request: Request, connection: Any,
                 deadline: Deadline, shutdown: bool = False):
        self.request = request
        self.connection = connection
        self.deadline = deadline
        self.admitted = time.monotonic()
        self.shutdown = shutdown


class ParseServer:
    """Socket front end: accepts, admits, serves, drains.

    Bind with ``socket_path`` (Unix domain) or ``host``/``port``
    (TCP; port 0 picks a free port, see :attr:`address`); add
    ``http_host``/``http_port`` to serve the HTTP frontend
    (:mod:`repro.serve.http`) concurrently off the same warm state and
    admission queue.  Call :meth:`serve_forever` on the thread that
    should do the parsing — the main thread for SIGALRM-hard deadlines
    — or :meth:`start` to spawn everything in the background (tests,
    notebooks).
    """

    def __init__(self, state: Optional[ServerState] = None,
                 socket_path: Optional[str] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 http_host: Optional[str] = None,
                 http_port: Optional[int] = None,
                 max_queue: int = 64,
                 deadline_seconds: float = 0.0,
                 workers: int = 0,
                 pool_config: Optional[PoolConfig] = None,
                 tracer: Any = None,
                 config: Optional[Config] = None,
                 optimization: str = DEFAULT_OPTIMIZATION,
                 cache_dir: Optional[str] = None,
                 use_result_cache: bool = True,
                 **config_overrides: Any):
        if state is None:
            state = ServerState(config, optimization=optimization,
                                cache_dir=cache_dir,
                                use_result_cache=use_result_cache,
                                tracer=tracer,
                                **config_overrides)
        self.state = state
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.service = ParseService(state, tracer=self.tracer)
        self.queue = AdmissionQueue(max_queue, tracer=self.tracer)
        self.deadline_seconds = max(0.0, deadline_seconds)
        # workers > 0 enables the supervised pre-forked pool: parses
        # run in child processes, supervisor-enforced deadlines replace
        # SIGALRM, and `workers` dispatcher threads serve concurrently.
        if pool_config is None and workers > 0:
            pool_config = PoolConfig(size=workers)
        self.pool_config = pool_config if workers > 0 else None
        self.pool: Optional[WorkerPool] = None
        self._dispatcher_count = max(1, workers)
        self.socket_path = socket_path
        self._requested_host = host
        self._requested_port = port
        self.address: Optional[Tuple[str, int]] = None
        # HTTP frontend: requested when http_port is not None (0 picks
        # a free port); started alongside the socket listener.
        self._http_requested = http_port is not None
        self._http_host = http_host or "127.0.0.1"
        self._http_port = http_port or 0
        self.http: Optional[Any] = None
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._worker: Optional[threading.Thread] = None
        self._extra_dispatchers: List[threading.Thread] = []
        self._connections: List[Any] = []
        self._connections_lock = threading.Lock()
        # In-flight request count: the drain barrier that lets the
        # shutdown sentinel wait for every other dispatcher to go idle
        # before it answers and closes.
        self._active = 0
        self._active_cond = threading.Condition()
        self._stopped = threading.Event()
        self.drained = 0

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """(host, port) of the HTTP frontend, once started."""
        return None if self.http is None else self.http.address

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> None:
        """Create and bind the listening socket (idempotent).  With an
        HTTP frontend requested and no socket endpoint, the line
        protocol is simply not served."""
        if self._listener is not None:
            return
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            listener = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        elif self._requested_port is None and self._http_requested:
            return  # HTTP-only daemon
        else:
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((self._requested_host or "127.0.0.1",
                           self._requested_port or 0))
            self.address = listener.getsockname()[:2]
        listener.listen(16)
        self._listener = listener

    def _start_pool(self) -> None:
        """Fork the worker pool (before ``bind``, so workers never
        inherit the listener) and route parses through it."""
        if self.pool_config is None or self.pool is not None:
            return
        self.pool = WorkerPool(self.state, self.pool_config,
                               tracer=self.tracer).start()
        self.state.executor = self.pool.execute
        self.service.pool = self.pool

    def _start_http(self) -> None:
        """Bind and start the HTTP frontend, if one was requested."""
        if not self._http_requested or self.http is not None:
            return
        from repro.serve.http import HttpFrontend
        self.http = HttpFrontend(self, host=self._http_host,
                                 port=self._http_port,
                                 tracer=self.tracer).start()

    def _start_acceptor(self) -> None:
        if self._listener is None:
            return
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          name="serve-acceptor",
                                          daemon=True)
        self._acceptor.start()

    def start(self) -> "ParseServer":
        """Bind and run acceptor + dispatchers as background threads."""
        self._start_pool()
        self.bind()
        self._start_http()
        self._start_acceptor()
        self._worker = threading.Thread(target=self._work_loop,
                                        name="serve-worker",
                                        daemon=True)
        self._worker.start()
        return self

    def serve_forever(self) -> int:
        """Bind, accept in the background, and parse on *this* thread
        until a ``shutdown`` request drains the queue.  Returns the
        number of requests served during the drain."""
        self._start_pool()
        self.bind()
        self._start_http()
        self._start_acceptor()
        self._work_loop()
        return self.drained

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server has fully stopped."""
        return self._stopped.wait(timeout)

    def close(self) -> None:
        """Hard stop: close the listener, every connection, the HTTP
        frontend, and the worker pool.  Prefer a ``shutdown`` request
        for a graceful drain."""
        self.queue.begin_drain()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self.http is not None:
            self.http.close()
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self.pool is not None:
            self.pool.close()
            self.state.executor = None
        self._stopped.set()

    # -- acceptor side (daemon threads; admission only) ----------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self.queue.draining:
            try:
                sock, _addr = listener.accept()
            except OSError:
                return
            connection = _Connection(sock)
            with self._connections_lock:
                self._connections.append(connection)
            reader = threading.Thread(
                target=self._read_loop, args=(connection,),
                name="serve-reader", daemon=True)
            reader.start()

    def _read_loop(self, connection: _Connection) -> None:
        while True:
            try:
                payload = connection.read_request()
            except (ValueError, UnicodeDecodeError) as exc:
                connection.send(protocol.error_reply(
                    None, None, f"bad request line: {exc}"))
                continue
            if payload is None:
                return
            try:
                request = protocol.decode_request(payload)
            except ProtocolError as exc:
                connection.send(protocol.error_reply(
                    exc.request_id, exc.op, str(exc)))
                continue
            self._admit(request, connection)

    def _admit(self, request: Request, connection: Any) -> None:
        """Admission control over one typed request; ``connection`` is
        anything with ``send(response)`` (a socket connection or a
        transport's response slot)."""
        if isinstance(request, ShutdownRequest):
            # Atomically flip to draining and land the sentinel behind
            # everything already queued: later submits shed, earlier
            # work still drains, and the worker answers the shutdown
            # last.
            self.queue.close_with(
                _QueuedRequest(request, connection, Deadline(0.0),
                               shutdown=True))
            return
        if isinstance(request, (StatsRequest, PingRequest)):
            # Control plane: answered inline by the admitting thread,
            # so health checks and stats stay responsive under load.
            connection.send(self.service.handle(request))
            return
        deadline_seconds = self.deadline_seconds
        if isinstance(request, ParseRequest) \
                and request.deadline is not None:
            deadline_seconds = request.deadline
        deadline = Deadline(deadline_seconds)
        queued = _QueuedRequest(request, connection, deadline)
        if not self.queue.submit(queued):
            reason = ("draining" if self.queue.draining else
                      f"queue depth {self.queue.max_depth} exceeded")
            connection.send(protocol.shed_reply(request.id, request.op,
                                                reason))

    # -- external transports (HTTP, in-process embedders) --------------

    def submit_request(self, request: Union[dict, Request],
                       timeout: Optional[float] = None) -> dict:
        """Admit one externally-transported request and block for its
        response — the bridge the HTTP frontend rides, so deadline,
        shed, and queue semantics are exactly the socket path's.

        Control-plane ops answer inline; everything else waits on the
        shared dispatcher(s).  ``timeout`` bounds the wait (defaults to
        the request deadline plus a supervision margin, unbounded
        without one); an expired wait answers ``unavailable``.
        """
        if not isinstance(request, Request):
            request = protocol.decode_request(request)
        slot = _ResponseSlot()
        with self._connections_lock:
            self._connections.append(slot)
        try:
            self._admit(request, slot)
            if timeout is None and isinstance(request, ParseRequest) \
                    and request.deadline is not None \
                    and request.deadline > 0:
                timeout = request.deadline + 60.0
            if not slot.wait(timeout):
                return protocol.reply(
                    request.id, request.op,
                    status=protocol.STATUS_UNAVAILABLE,
                    error=f"no response within {timeout:.3g}s")
            return slot.response
        finally:
            with self._connections_lock:
                try:
                    self._connections.remove(slot)
                except ValueError:
                    pass

    # -- worker side (the parsing threads) -----------------------------

    def _work_loop(self) -> None:
        """Run ``_dispatcher_count`` dispatch loops: one on this
        thread, the rest on daemon threads.  With a worker pool the
        extra dispatchers give the daemon true request concurrency —
        each blocks in the supervisor's ``select``, not on a parse."""
        self._extra_dispatchers = []
        for index in range(self._dispatcher_count - 1):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"serve-dispatch-{index + 1}", daemon=True)
            thread.start()
            self._extra_dispatchers.append(thread)
        try:
            self._dispatch_loop()
        finally:
            self.close()
            for thread in self._extra_dispatchers:
                thread.join(timeout=2.0)

    def _dispatch_loop(self) -> None:
        while True:
            try:
                queued = self.queue.pop(timeout=0.5)
            except QueueClosed:
                return
            if queued is None:
                continue
            if queued.shutdown:
                # Drain barrier: everything admitted before shutdown
                # has been *popped* (FIFO), but siblings may still be
                # serving theirs — answer the shutdown only when every
                # other dispatcher is idle.
                with self._active_cond:
                    while self._active > 0:
                        self._active_cond.wait(timeout=0.5)
                self._finish_drain(queued)
                self.close()
                return
            with self._active_cond:
                self._active += 1
            try:
                self._serve_one(queued)
            finally:
                with self._active_cond:
                    self._active -= 1
                    if self._active == 0:
                        self._active_cond.notify_all()

    def _serve_one(self, queued: _QueuedRequest) -> None:
        request, deadline = queued.request, queued.deadline
        queue_seconds = time.monotonic() - queued.admitted
        if deadline.expired():
            # Spent its whole budget waiting: answer timeout without
            # doing the work (the engine's deadline semantics, applied
            # to queue wait).
            if self.tracer.enabled:
                self.tracer.count("serve.deadline.expired")
            queued.connection.send(protocol.timeout_reply(
                request.id, request.op,
                f"deadline of {deadline.seconds:.3g}s "
                f"expired after {queue_seconds:.3g}s in queue"))
            return
        started = time.monotonic()
        try:
            if self.pool is not None:
                # Deadlines are enforced out of process by the pool
                # supervisor (select + SIGKILL) — no SIGALRM, so this
                # works identically on every dispatcher thread.
                response = self.service.handle(request,
                                               deadline=deadline)
            else:
                with attempt_deadline(deadline.remaining()
                                      if deadline.enabled else 0.0):
                    response = self.service.handle(request)
        except DeadlineExceeded:
            response = protocol.timeout_reply(
                request.id, request.op,
                f"deadline of {deadline.seconds:.3g}s "
                f"exceeded while parsing")
        response.setdefault("serve", {})
        response["serve"].update({
            "queue_seconds": round(queue_seconds, 6),
            "seconds": round(time.monotonic() - started, 6),
        })
        queued.connection.send(response)

    def _finish_drain(self, queued: _QueuedRequest) -> None:
        # Everything admitted before the shutdown has been served (the
        # queue is FIFO and shutdown was submitted after begin_drain).
        self.drained = self.service.requests
        response = self.service.handle(queued.request)
        response["drained"] = self.drained
        response["serve"] = {"queue_seconds":
                             round(time.monotonic() - queued.admitted,
                                   6),
                             "seconds": 0.0}
        queued.connection.send(response)
