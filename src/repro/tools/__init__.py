"""Command-line entry points.

* ``python -m repro.tools.parse_cli`` — parse one file in all
  configurations (``superc-parse``).
* ``python -m repro.tools.batch_cli`` — parse a whole corpus over a
  worker pool with persistent caches (``superc-batch``).
* ``python -m repro.tools.report_cli`` — Table 2/3 usage survey for a
  source tree (``superc-report``).
"""
