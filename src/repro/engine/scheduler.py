"""Corpus-scale batch scheduling over a process worker pool.

The paper's evaluation parses 7,665 Linux compilation units; this
module is the driver that makes such runs practical:

* compilation units are independent, so they fan out across a
  ``concurrent.futures`` process pool (one SuperC per worker, tables
  deserialized from the persistent grammar-table cache);
* each unit attempt runs under a **SIGALRM deadline** inside the
  worker, so a pathological unit (exponential conditionals, macro
  blowup) is cut off without losing the pool;
* a crashed worker (hard kill, OOM) breaks only its in-flight units —
  the pool is rebuilt and the units retried, up to ``retries`` times;
* unchanged units are answered from the :class:`ResultCache` without
  spawning any work at all.

Results come back as plain record dicts (see ``repro.engine.results``)
and are folded into a :class:`CorpusReport`.
"""

from __future__ import annotations

import contextlib
import glob as glob_module
import importlib
import os
import random
import signal
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, \
    Tuple, Union

from repro.cpp import DictFileSystem, FileSystem, RealFileSystem
from repro.engine.cache import (ResultCache, config_fingerprint,
                                include_closure_digest,
                                warm_grammar_tables)
from repro.engine.metrics import MetricsStream
from repro.engine.results import (RETRYABLE_STATUSES, STATUS_CRASHED,
                                  STATUS_ERROR, STATUS_TIMEOUT,
                                  CorpusReport, error_record,
                                  record_from_result)
from repro.parser.fmlr import OPTIMIZATION_LEVELS

DEFAULT_OPTIMIZATION = "Shared, Lazy, & Early"


class EngineConfig:
    """Scheduling and caching knobs for a batch run."""

    def __init__(self, workers: int = 1,
                 timeout_seconds: float = 0.0,
                 retries: int = 1,
                 optimization: str = DEFAULT_OPTIMIZATION,
                 cache_dir: Optional[str] = None,
                 use_result_cache: bool = True,
                 fault_hook: Union[None, str, Callable] = None,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 2.0,
                 backoff_jitter: float = 0.5,
                 backoff_seed: int = 0,
                 crash_loop_threshold: int = 3,
                 profile: bool = False):
        if optimization not in OPTIMIZATION_LEVELS:
            raise ValueError(f"unknown optimization {optimization!r}")
        self.workers = max(1, workers)
        self.timeout_seconds = timeout_seconds  # 0 disables the alarm
        self.retries = max(0, retries)
        self.optimization = optimization
        self.cache_dir = cache_dir
        self.use_result_cache = use_result_cache
        # Retry pacing: wave N sleeps base * factor**(N-2), capped at
        # backoff_max, plus up to ``backoff_jitter`` of that delay in
        # seeded jitter — deterministic for a given (seed, wave), so
        # runs are reproducible.  base=0 disables sleeping entirely.
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_factor = max(1.0, backoff_factor)
        self.backoff_max = max(0.0, backoff_max)
        self.backoff_jitter = max(0.0, backoff_jitter)
        self.backoff_seed = backoff_seed
        # Circuit breaker: a unit whose crash/deadline failures reach
        # this many consecutive attempts is marked STATUS_CRASHED and
        # permanently dropped from retrying (0 disables).
        self.crash_loop_threshold = max(0, crash_loop_threshold)
        # Observability: give every worker's SuperC an enabled
        # repro.obs tracer, so each record carries a per-unit profile
        # and the report gains a corpus profile rollup.  Off by
        # default — the null tracer keeps the hot path allocation-free.
        self.profile = profile
        # Test/benchmark instrumentation: called with the unit path
        # before each parse attempt.  A dotted "pkg.mod:name" string is
        # resolved inside the worker (start-method agnostic); a bare
        # callable also works under the fork start method.
        self.fault_hook = fault_hook


class CrashLoopBreaker:
    """Consecutive-failure circuit breaker.

    Shared fault-tolerance machinery: the batch scheduler opens one per
    unit (a unit that crashes or times out on ``threshold`` consecutive
    attempts is abandoned as ``STATUS_CRASHED``), and the serve worker
    pool opens one over worker deaths (``threshold`` consecutive dead
    workers degrade the daemon to inline parsing instead of forking a
    crash loop).  ``threshold=0`` disables the breaker entirely.
    """

    __slots__ = ("threshold", "consecutive", "tripped", "trips")

    def __init__(self, threshold: int):
        self.threshold = max(0, threshold)
        self.consecutive = 0
        self.tripped = False
        self.trips = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def failure(self) -> bool:
        """Record one failure; True exactly when this one trips the
        breaker (so callers can count ``*.breaker.trip`` once)."""
        self.consecutive += 1
        if self.enabled and not self.tripped \
                and self.consecutive >= self.threshold:
            self.tripped = True
            self.trips += 1
            return True
        return False

    def success(self) -> None:
        """A success resets the streak (but not a tripped breaker —
        closing again is an explicit :meth:`reset`)."""
        self.consecutive = 0

    def reset(self) -> None:
        """Close the breaker (the pool's cooldown probe)."""
        self.consecutive = 0
        self.tripped = False

    def __repr__(self) -> str:
        return (f"CrashLoopBreaker(threshold={self.threshold}, "
                f"consecutive={self.consecutive}, "
                f"tripped={self.tripped})")


class CorpusJob:
    """What to parse: a file set, its units, and preprocessor config."""

    def __init__(self, units: Sequence[str],
                 include_paths: Sequence[str] = (),
                 builtins: Optional[Dict[str, str]] = None,
                 extra_definitions: Optional[Dict[str, str]] = None,
                 files: Optional[Dict[str, str]] = None,
                 runner: Union[None, str, Callable] = None,
                 runner_args: Optional[Dict[str, object]] = None):
        self.units = list(units)
        self.include_paths = list(include_paths)
        self.builtins = builtins
        self.extra_definitions = extra_definitions
        # In-memory corpus (DictFileSystem) when set; the real
        # filesystem otherwise.  Both pickle cleanly to workers.
        self.files = files
        # What to do per unit.  None = the default parse-and-record.
        # A custom runner — ``runner(state, unit) -> record dict``,
        # given as a callable or a dotted "pkg.mod:name" string
        # resolved inside the worker — reuses the engine's pool,
        # deadline, retry, and metrics machinery for other per-unit
        # work (differential fuzzing, benchmarking).  Custom records
        # must carry the standard record keys (see repro.engine
        # .results); missing unit/attempt/cache/seconds are filled in.
        self.runner = runner
        self.runner_args = dict(runner_args or {})

    @classmethod
    def from_directory(cls, root: str,
                       include_paths: Sequence[str] = (),
                       pattern: str = "**/*.c",
                       builtins: Optional[Dict[str, str]] = None,
                       extra_definitions: Optional[Dict[str, str]] = None
                       ) -> "CorpusJob":
        """Scan a source tree for compilation units.

        Relative include paths are resolved against ``root``, so
        ``superc-batch TREE -I include`` works from anywhere."""
        root = os.path.abspath(root)
        units = sorted(glob_module.glob(os.path.join(root, pattern),
                                        recursive=True))
        resolved = [path if os.path.isabs(path)
                    else os.path.join(root, path)
                    for path in include_paths]
        return cls(units, resolved, builtins=builtins,
                   extra_definitions=extra_definitions)

    @classmethod
    def from_corpus(cls, corpus,
                    builtins: Optional[Dict[str, str]] = None,
                    extra_definitions: Optional[Dict[str, str]] = None
                    ) -> "CorpusJob":
        """Wrap a ``repro.corpus.KernelCorpus`` (in-memory)."""
        return cls(corpus.units, corpus.include_paths,
                   builtins=builtins,
                   extra_definitions=extra_definitions,
                   files=dict(corpus.files))

    def filesystem(self) -> FileSystem:
        if self.files is not None:
            return DictFileSystem(self.files)
        return RealFileSystem()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

class DeadlineExceeded(Exception):
    """Raised by the SIGALRM handler when an attempt hits its deadline.

    Shared deadline machinery: batch workers raise it out of
    :func:`attempt_deadline`, and the serve layer's admission control
    (:mod:`repro.serve.admission`) reuses both the exception and the
    context manager for per-request deadlines.
    """


# Backwards-compatible alias (pre-serve name).
_UnitDeadline = DeadlineExceeded


def _alarm_handler(signum, frame):
    raise DeadlineExceeded()


@contextlib.contextmanager
def attempt_deadline(seconds: float) -> Iterator[bool]:
    """Hard wall-clock deadline around one unit of work.

    Arms a SIGALRM interval timer for ``seconds`` and raises
    :class:`DeadlineExceeded` from wherever the work is executing when
    it fires.  Signals only deliver to a process's main thread, so off
    the main thread (a serve worker running next to a socket acceptor)
    — or when ``seconds`` is 0 or ``setitimer`` is unavailable — this
    degrades to a no-op and yields False; callers that need a fallback
    can check the yielded flag and apply soft (between-requests)
    deadline checks instead.
    """
    use_alarm = (seconds > 0 and hasattr(signal, "setitimer")
                 and threading.current_thread()
                 is threading.main_thread())
    if not use_alarm:
        yield False
        return
    previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)


_STATE: dict = {}


def _resolve_hook(hook: Union[None, str, Callable]) -> Optional[Callable]:
    if hook is None or callable(hook):
        return hook
    module_name, _sep, attr = hook.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def _init_worker(job: CorpusJob, optimization: str,
                 timeout_seconds: float,
                 fault_hook: Union[None, str, Callable],
                 profile: bool = False) -> None:
    """Build per-process state once: filesystem, tables, SuperC."""
    # Lazy import keeps worker bootstrap (and pickling) lean.
    from repro.cgrammar import c_tables
    from repro.superc import SuperC
    tracer = None
    if profile:
        # One tracer per worker process, reused across units; SuperC
        # windows it per unit (Tracer.mark/since) when building each
        # result's Profile.
        from repro.obs.tracer import Tracer
        tracer = Tracer()
    superc = SuperC(job.filesystem(),
                    include_paths=job.include_paths,
                    builtins=job.builtins,
                    extra_definitions=job.extra_definitions,
                    options=OPTIMIZATION_LEVELS[optimization],
                    tables=c_tables(),
                    tracer=tracer)
    _STATE["superc"] = superc
    _STATE["timeout"] = timeout_seconds
    _STATE["hook"] = _resolve_hook(fault_hook)
    _STATE["job"] = job
    _STATE["runner"] = _resolve_hook(job.runner)
    _STATE["runner_args"] = job.runner_args
    _STATE["runner_cache"] = {}


def _run_unit(task: Tuple[str, int]) -> dict:
    """Parse one unit inside a worker; never raises."""
    unit, attempt = task
    superc = _STATE["superc"]
    timeout = _STATE["timeout"]
    hook = _STATE["hook"]
    start = time.perf_counter()
    try:
        with attempt_deadline(timeout):
            if hook is not None:
                hook(unit)
            runner = _STATE.get("runner")
            if runner is not None:
                record = dict(runner(_STATE, unit))
                record.setdefault("unit", unit)
                record["attempt"] = attempt
                record.setdefault("cache", "miss")
                record.setdefault("seconds",
                                  round(time.perf_counter() - start, 6))
                return record
            text = superc.fs.read(unit)
            if text is None:
                return error_record(unit, STATUS_ERROR,
                                    f"cannot read {unit}", attempt,
                                    time.perf_counter() - start)
            result = superc.parse_source(text, unit)
            record = record_from_result(unit, result, attempt,
                                        time.perf_counter() - start)
            if superc.tracer.enabled:
                # Profile captured into the record; drop the raw spans
                # so a long-lived worker tracer stays bounded.
                superc.tracer.reset()
            return record
    except DeadlineExceeded:
        return error_record(unit, STATUS_TIMEOUT,
                            f"deadline of {timeout:.3g}s exceeded",
                            attempt, time.perf_counter() - start)
    except Exception as exc:
        return error_record(unit, STATUS_ERROR, repr(exc), attempt,
                            time.perf_counter() - start)


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------

class BatchEngine:
    """Schedules a corpus job over workers, caches, and metrics."""

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()

    def run(self, job: CorpusJob,
            metrics: Optional[MetricsStream] = None,
            tracer: Optional[object] = None) -> CorpusReport:
        """Run the job.  ``tracer`` (a :class:`repro.obs.Tracer`)
        observes the *parent* side: cache-probe and wave spans plus
        ``engine.result_cache.hits``/``misses`` counters — worker-side
        per-unit profiles are controlled by ``EngineConfig.profile``.
        """
        from repro.obs.tracer import NULL_TRACER
        tracer = tracer if tracer is not None else NULL_TRACER
        config = self.config
        metrics = metrics or MetricsStream()
        wall_start = time.perf_counter()
        # The result cache keys on source + include closure, which a
        # custom runner's outcome may not depend on alone — skip it.
        cache = self._result_cache(job) \
            if config.use_result_cache and job.runner is None else None
        metrics.run_start(len(job.units), config.workers,
                          optimization=config.optimization,
                          result_cache=cache is not None)

        final: Dict[str, dict] = {}
        pending: List[str] = []
        cache_keys: Dict[str, str] = {}
        breakers: Dict[str, CrashLoopBreaker] = {}
        fs = job.filesystem()
        with tracer.span("cache-probe", units=len(job.units)):
            for unit in job.units:
                hit = None
                if cache is not None:
                    key = self._unit_key(cache, fs, job, unit)
                    if key is not None:
                        cache_keys[unit] = key
                        hit = cache.get(key)
                if hit is not None:
                    hit = dict(hit)
                    hit["cache"] = "hit"
                    final[unit] = hit
                    metrics.unit(hit)
                    if tracer.enabled:
                        tracer.count("engine.result_cache.hits")
                else:
                    pending.append(unit)
                    if cache is not None and tracer.enabled:
                        tracer.count("engine.result_cache.misses")

        if pending:
            # Warm the table blob before forking so workers
            # deserialize instead of regenerating in parallel.
            warm_grammar_tables()
        attempt = 1
        while pending:
            with tracer.span("wave", attempt=attempt,
                             units=len(pending)):
                wave_records = self._run_wave(job, pending, attempt)
            for record in wave_records:
                final[record["unit"]] = record
                metrics.unit(record)
            # Crash-loop circuit breaker: a unit that has crashed or
            # timed out on N consecutive attempts is permanently
            # abandoned for this run — retrying a deterministic
            # worker-killer only burns the remaining retry budget.
            threshold = config.crash_loop_threshold
            if threshold:
                for unit in pending:
                    record = final[unit]
                    if record["status"] not in RETRYABLE_STATUSES:
                        continue
                    breaker = breakers.get(unit)
                    if breaker is None:
                        breaker = breakers[unit] = \
                            CrashLoopBreaker(threshold)
                    breaker.failure()
                    if breaker.tripped:
                        tripped = dict(record)
                        tripped["status"] = STATUS_CRASHED
                        tripped["error"] = (
                            f"{record.get('error') or 'failed'} "
                            f"(circuit breaker: {breaker.consecutive} "
                            f"consecutive crash/deadline attempts)")
                        final[unit] = tripped
                        metrics.unit(tripped)
            attempt += 1
            if attempt > config.retries + 1:
                break
            pending = [unit for unit in pending
                       if final[unit]["status"] in RETRYABLE_STATUSES]
            if pending:
                delay = self._backoff_delay(attempt)
                if delay > 0:
                    time.sleep(delay)

        if cache is not None:
            for unit, record in final.items():
                if record["cache"] == "hit" or unit not in cache_keys:
                    continue
                # Transient outcomes (crash, deadline, circuit-breaker
                # trips) stay uncached so the next run retries them.
                if record["status"] not in RETRYABLE_STATUSES \
                        and record["status"] != STATUS_CRASHED:
                    cache.put(cache_keys[unit], record)

        records = [final[unit] for unit in job.units if unit in final]
        report = CorpusReport(records,
                              wall_seconds=time.perf_counter()
                              - wall_start,
                              workers=config.workers)
        metrics.run_end(report.summary())
        return report

    # -- internals --------------------------------------------------------

    def _backoff_delay(self, wave: int) -> float:
        """Deterministic exponential backoff with seeded jitter before
        retry wave ``wave`` (the first retry wave is 2)."""
        config = self.config
        if config.backoff_base <= 0:
            return 0.0
        delay = min(config.backoff_max,
                    config.backoff_base
                    * config.backoff_factor ** max(0, wave - 2))
        rng = random.Random(f"{config.backoff_seed}:{wave}")
        return delay * (1.0 + config.backoff_jitter * rng.random())

    def _result_cache(self, job: CorpusJob) -> ResultCache:
        fingerprint = config_fingerprint(
            job.include_paths, job.builtins, job.extra_definitions,
            self.config.optimization)
        return ResultCache(self.config.cache_dir, fingerprint)

    @staticmethod
    def _unit_key(cache: ResultCache, fs: FileSystem, job: CorpusJob,
                  unit: str) -> Optional[str]:
        text = fs.read(unit)
        if text is None:
            return None
        closure = include_closure_digest(fs, unit, job.include_paths)
        return cache.key_for(unit, text, closure)

    def _run_wave(self, job: CorpusJob, units: Sequence[str],
                  attempt: int) -> List[dict]:
        config = self.config
        tasks = [(unit, attempt) for unit in units]
        if config.workers == 1:
            _init_worker(job, config.optimization,
                         config.timeout_seconds, config.fault_hook,
                         config.profile)
            return [_run_unit(task) for task in tasks]
        if attempt == 1:
            return self._run_pool(job, tasks)
        # Retry waves isolate each unit in its own pool: when a unit
        # hard-kills its worker, the broken pool takes every sibling
        # in-flight future down with it, and sharing a pool again
        # would let the same unit sink its siblings' retries too.
        records: List[dict] = []
        for task in tasks:
            records.extend(self._run_pool(job, [task]))
        return records

    def _run_pool(self, job: CorpusJob,
                  tasks: List[Tuple[str, int]]) -> List[dict]:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
        config = self.config
        records: List[dict] = []
        # A hard-killed worker (OOM, segfault) breaks the whole
        # executor; its in-flight units become retryable error records
        # and the next wave — driven by ``run``'s retry loop — gets a
        # brand-new pool.
        with ProcessPoolExecutor(
                max_workers=min(config.workers, len(tasks)),
                initializer=_init_worker,
                initargs=(job, config.optimization,
                          config.timeout_seconds,
                          config.fault_hook,
                          config.profile)) as pool:
            futures = {pool.submit(_run_unit, task): task
                       for task in tasks}
            for future, task in futures.items():
                try:
                    records.append(future.result())
                except BrokenProcessPool:
                    records.append(error_record(
                        task[0], STATUS_ERROR,
                        "worker process died", task[1]))
                except Exception as exc:
                    records.append(error_record(
                        task[0], STATUS_ERROR, repr(exc), task[1]))
        return records
