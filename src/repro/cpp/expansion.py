"""Configuration-preserving macro expansion (§2.1, §3.1).

The expander rewrites a token tree, performing all macro operations
while preserving static conditionals:

* multiply-defined macros propagate their implicit conditional: the
  expansion site becomes a :class:`Conditional` with one branch per
  feasible macro-table entry (Figure 2);
* function-like invocations whose name or arguments span conditionals
  are handled by *region hoisting*: the minimal extent that completes
  the invocation in every branch is flattened with Algorithm 1, each
  flat branch is expanded separately, and the results recombine into a
  conditional (Figures 3–4);
* token pasting and stringification follow C99 semantics; conditionals
  reach them only through pre-expanded arguments, which region hoisting
  has already flattened, so the paper's "hoist conditionals around
  token pasting" (Figure 5) falls out of the same mechanism;
* hide sets (``Token.no_expand``) prevent recursive expansion.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Sequence, Tuple

from repro.cpp.errors import IncompleteInvocation, PreprocessorError
from repro.cpp.hoist import hoist, unhoist
from repro.cpp.macro_table import FREE, MacroDefinition, MacroTable
from repro.cpp.tree import Conditional, TokenTree
from repro.lexer.lexer import Lexer
from repro.lexer.tokens import Token, TokenKind


class ExpansionStats:
    """Counters for Table 3's macro rows."""

    def __init__(self) -> None:
        self.invocations = 0
        self.nested_invocations = 0
        self.builtin_invocations = 0
        self.hoisted_invocations = 0
        self.token_pastings = 0
        self.hoisted_pastings = 0
        self.stringifications = 0
        self.hoisted_stringifications = 0


class Expander:
    """Expands macros in token trees under presence conditions."""

    def __init__(self, table: MacroTable, manager: Any,
                 stats: Optional[ExpansionStats] = None,
                 protect_defined: bool = False, sink=None, tracer=None):
        self.table = table
        self.manager = manager
        self.stats = stats or ExpansionStats()
        # Optional repro.obs tracer; records hoist expansion factors.
        self.tracer = tracer
        # In #if expressions, `defined` and its operand never expand.
        self.protect_defined = protect_defined
        # Error confinement: ``sink(condition, error) -> bool`` is asked
        # to absorb a PreprocessorError occurring under ``condition``.
        # True means confined (the failing invocation is dropped and
        # expansion continues); False re-raises for TRUE-condition
        # failures.  Without a sink every error is hard (legacy).
        self.sink = sink

    def _confined(self, condition: Any, error: PreprocessorError) -> bool:
        return self.sink is not None and self.sink(condition, error)

    # -- entry point --------------------------------------------------------

    def expand(self, items: Sequence, condition: Any,
               allow_incomplete: bool = False) -> TokenTree:
        """Expand ``items`` under ``condition``.

        ``allow_incomplete`` is set when expanding the inside of a
        conditional branch: an invocation running off the end raises
        :class:`IncompleteInvocation` so the caller can hoist wider.
        """
        work: Deque = deque(items)
        out: TokenTree = []
        while work:
            item = work.popleft()
            if isinstance(item, Conditional):
                self._expand_conditional(item, work, out, condition)
                continue
            token = item
            if token.kind is not TokenKind.IDENTIFIER:
                out.append(token)
                continue
            if self.protect_defined and token.text == "defined":
                self._pass_defined(token, work, out)
                continue
            if token.text in token.no_expand:
                out.append(token)
                continue
            entries = self.table.lookup(token.text, condition,
                                        token.version)
            if not any(isinstance(entry, MacroDefinition)
                       for _, entry in entries):
                out.append(token)
                continue
            self._expand_macro(token, entries, work, out, condition,
                               allow_incomplete)
        return out

    # -- conditionals --------------------------------------------------------

    def _expand_conditional(self, item: Conditional, work: Deque,
                            out: TokenTree, condition: Any) -> None:
        try:
            branches = []
            for branch_cond, subtree in item.branches:
                joint = condition & branch_cond
                if joint.is_false():
                    continue
                branches.append(
                    (branch_cond,
                     self.expand(subtree, joint, allow_incomplete=True)))
            if branches:
                out.append(Conditional(branches))
        except IncompleteInvocation:
            # An invocation spans out of this conditional: hoist the
            # conditional together with following items.
            self._hoist_region(None, item, work, out, condition)

    def _pass_defined(self, token: Token, work: Deque,
                      out: TokenTree) -> None:
        """Emit `defined X` / `defined(X)` without expanding X."""
        out.append(token)
        if work and isinstance(work[0], Token) \
                and work[0].is_punctuator("("):
            out.append(work.popleft())
            if work and isinstance(work[0], Token):
                out.append(work.popleft())
            if work and isinstance(work[0], Token) \
                    and work[0].is_punctuator(")"):
                out.append(work.popleft())
        elif work and isinstance(work[0], Token) \
                and work[0].kind is TokenKind.IDENTIFIER:
            out.append(work.popleft())

    # -- macro dispatch -------------------------------------------------------

    def _expand_macro(self, token: Token, entries, work: Deque,
                      out: TokenTree, condition: Any,
                      allow_incomplete: bool) -> None:
        self.stats.invocations += 1
        if token.no_expand:
            self.stats.nested_invocations += 1
        if any(isinstance(entry, MacroDefinition) and entry.is_builtin
               for _, entry in entries):
            self.stats.builtin_invocations += 1

        if len(entries) == 1:
            entry_cond, entry = entries[0]
            if not entry.is_function_like:
                try:
                    body = self._subst_object(entry, token)
                except PreprocessorError as error:
                    if self._confined(condition, error):
                        return
                    raise
                work.extendleft(reversed(body))
                return
            # Function-like with a single definition: fast path when the
            # whole invocation is flat.
            consumed = self._scan_flat_invocation(work)
            if consumed == -1:
                out.append(token)  # no '(' follows: not an invocation
                return
            if consumed >= 0:
                flat = [work.popleft() for _ in range(consumed)]
                try:
                    args = self._parse_args(token, entry, flat)
                    body = self._subst_function(entry, token, args,
                                                condition, hoisted=False)
                except PreprocessorError as error:
                    if self._confined(condition, error):
                        return
                    raise
                work.extendleft(reversed(body))
                return
            # consumed is None-like (-2): a conditional or branch end is
            # in the way; fall through to region hoisting.
            if consumed == -3:
                if allow_incomplete:
                    raise IncompleteInvocation(token.text)
                out.append(token)
                return
        self._hoist_region(token, None, work, out, condition,
                           allow_incomplete)

    def _scan_flat_invocation(self, work: Deque) -> int:
        """Look ahead for a complete flat invocation.

        Returns the number of items forming ``( ... )`` balanced, or
        -1 if the next token is not '(' (not an invocation), -2 if a
        conditional interferes (hoist needed), -3 if input ends inside
        the invocation (incomplete).
        """
        if not work:
            return -3
        first = work[0]
        if isinstance(first, Conditional):
            return -2
        if not first.is_punctuator("("):
            return -1
        depth = 0
        for index, item in enumerate(work):
            if isinstance(item, Conditional):
                return -2
            if item.is_punctuator("("):
                depth += 1
            elif item.is_punctuator(")"):
                depth -= 1
                if depth == 0:
                    return index + 1
        return -3

    # -- region hoisting -------------------------------------------------------

    def _hoist_region(self, head: Optional[Token],
                      first_item: Optional[Conditional], work: Deque,
                      out: TokenTree, condition: Any,
                      allow_incomplete: bool = False) -> None:
        """Grow a region until every hoisted branch expands without
        running off its end, then emit the per-branch expansions.

        Completeness is judged *post-expansion* (the paper interleaves
        parsing of the invocation with hoisting for the same reason):
        an object-like macro may expand to a function-like name whose
        arguments lie beyond the conditional (Figure 4).
        """
        self.stats.hoisted_invocations += 1
        region: List = [head] if head is not None else [first_item]
        while True:
            flat = hoist(condition, region, self.tracer)
            snapshot = vars(self.stats).copy()
            try:
                branches: List[Tuple[Any, TokenTree]] = []
                for branch_cond, tokens in flat:
                    branches.extend(self._expand_flat_branch(
                        tokens, branch_cond, trial=True))
                out.extend(unhoist(branches))
                return
            except IncompleteInvocation:
                for key, value in snapshot.items():
                    setattr(self.stats, key, value)
            if not work:
                if allow_incomplete:
                    raise IncompleteInvocation(
                        head.text if head else "<conditional>")
                # Input genuinely ends here: final pass treats trailing
                # macro names / unterminated invocations as plain tokens.
                branches = []
                for branch_cond, tokens in flat:
                    branches.extend(self._expand_flat_branch(
                        tokens, branch_cond, trial=False))
                out.extend(unhoist(branches))
                return
            region.append(work.popleft())

    def _expand_flat_branch(self, tokens: List[Token], condition: Any,
                            trial: bool) \
            -> List[Tuple[Any, TokenTree]]:
        """Expand one flat hoisted branch; the head may still be
        multiply-defined, so split per macro-table entry (this per-entry
        split is what guarantees progress and prevents the expander from
        re-hoisting the same region forever)."""
        if condition.is_false():
            return []
        if not tokens:
            return [(condition, [])]
        head = tokens[0]
        if head.kind is not TokenKind.IDENTIFIER or \
                head.text in head.no_expand:
            return [(condition,
                     self.expand(tokens, condition,
                                 allow_incomplete=trial))]
        results: List[Tuple[Any, TokenTree]] = []
        for entry_cond, entry in self.table.lookup(
                head.text, condition, head.version):
            try:
                if not isinstance(entry, MacroDefinition):
                    expanded = [head] + self.expand(
                        tokens[1:], entry_cond, allow_incomplete=trial)
                elif not entry.is_function_like:
                    body = self._subst_object(entry, head)
                    expanded = self.expand(body + tokens[1:], entry_cond,
                                           allow_incomplete=trial)
                else:
                    end = _scan_end(tokens, 1)
                    if end is None:
                        shape = _scan_tokens_invocation(tokens, 1)
                        if shape == "incomplete" and trial:
                            # The '(' (or its close) may lie beyond this
                            # branch: demand a wider region.
                            raise IncompleteInvocation(head.text)
                        # Not an invocation in this branch.
                        expanded = [head] + self.expand(
                            tokens[1:], entry_cond, allow_incomplete=trial)
                    else:
                        args = self._parse_args(head, entry, tokens[1:end])
                        body = self._subst_function(entry, head, args,
                                                    entry_cond, hoisted=True)
                        expanded = self.expand(body + tokens[end:],
                                               entry_cond,
                                               allow_incomplete=trial)
            except PreprocessorError as error:
                if self._confined(entry_cond, error):
                    # The branch's configurations are recorded invalid;
                    # it contributes no tokens.
                    results.append((entry_cond, []))
                    continue
                raise
            results.append((entry_cond, expanded))
        return results

    # -- substitution -------------------------------------------------------

    def _subst_object(self, entry: MacroDefinition,
                      head: Token) -> List[Token]:
        hide = head.no_expand | {entry.name}
        body = []
        for index, token in enumerate(entry.body):
            clone = token.copy()
            clone.no_expand = clone.no_expand | hide
            clone.version = head.version
            if index == 0:
                clone.layout = head.layout
            body.append(clone)
        return self._paste_and_flatten(entry, body, {}, head)

    def _parse_args(self, head: Token, entry: MacroDefinition,
                    flat: List[Token]) -> List[List[Token]]:
        """Split ``( ... )`` into comma-separated arguments."""
        if not flat or not flat[0].is_punctuator("("):
            raise PreprocessorError(
                f"malformed invocation of {entry.name!r}", head)
        args: List[List[Token]] = []
        current: List[Token] = []
        depth = 0
        for token in flat:
            if token.is_punctuator("("):
                depth += 1
                if depth == 1:
                    continue
            elif token.is_punctuator(")"):
                depth -= 1
                if depth == 0:
                    break
            elif token.is_punctuator(",") and depth == 1:
                args.append(current)
                current = []
                continue
            current.append(token)
        args.append(current)
        params = entry.params or []
        if len(args) == 1 and not args[0] and not params \
                and not entry.variadic:
            args = []
        if entry.variadic:
            if len(args) < len(params):
                args = args + [[] for _ in range(len(params) - len(args))]
        elif len(args) != len(params):
            if len(params) == 0 and len(args) == 1 and not args[0]:
                args = []
            else:
                raise PreprocessorError(
                    f"macro {entry.name!r} expects {len(params)} "
                    f"argument(s), got {len(args)}", head)
        return args

    def _subst_function(self, entry: MacroDefinition, head: Token,
                        args: List[List[Token]], condition: Any,
                        hoisted: bool) -> TokenTree:
        params = entry.params or []
        raw: dict = {name: args[i] for i, name in enumerate(params)}
        if entry.variadic:
            va: List[Token] = []
            for index in range(len(params), len(args)):
                if index > len(params):
                    comma = Token(TokenKind.PUNCTUATOR, ",",
                                  head.file, head.line, head.col)
                    va.append(comma)
                va.extend(args[index])
            raw[entry.va_name or "__VA_ARGS__"] = va
        hide = head.no_expand | {entry.name}
        body = []
        for token in entry.body:
            clone = token.copy()
            clone.version = head.version
            if token.kind is not TokenKind.IDENTIFIER or \
                    token.text not in raw:
                clone.no_expand = clone.no_expand | hide
            body.append(clone)
        return self._paste_and_flatten(entry, body, raw, head,
                                       condition=condition, hoisted=hoisted,
                                       hide=hide)

    def _paste_and_flatten(self, entry: MacroDefinition,
                           body: List[Token], raw: dict, head: Token,
                           condition: Any = None, hoisted: bool = False,
                           hide: Optional[frozenset] = None) -> TokenTree:
        """Apply # and ##, substitute parameters, and flatten.

        Fragments are lists of tree items; parameters adjacent to # or
        ## substitute their raw tokens, others their pre-expansion.
        """
        hide = hide if hide is not None else (head.no_expand | {entry.name})
        va_param = (entry.va_name or "__VA_ARGS__") if entry.variadic \
            else None
        fragments: List[TokenTree] = []
        index = 0
        while index < len(body):
            token = body[index]
            nxt = body[index + 1] if index + 1 < len(body) else None
            # GNU comma deletion: `, ## __VA_ARGS__` drops the comma
            # when the variadic argument is empty and pastes nothing
            # (tokens are placed verbatim) when it is not.
            if va_param is not None and token.is_punctuator(",") and \
                    nxt is not None and nxt.kind is TokenKind.HASHHASH \
                    and index + 2 < len(body) \
                    and body[index + 2].kind is TokenKind.IDENTIFIER \
                    and body[index + 2].text == va_param \
                    and va_param in raw:
                va_tokens = raw[va_param]
                if va_tokens:
                    fragments.append([token])
                    clones = []
                    for arg_token in va_tokens:
                        clone = arg_token.copy()
                        clone.version = head.version
                        clones.append(clone)
                    fragments.append(clones)
                index += 3
                continue
            if token.kind is TokenKind.HASH and nxt is not None and \
                    nxt.kind is TokenKind.IDENTIFIER and nxt.text in raw:
                self.stats.stringifications += 1
                if hoisted:
                    self.stats.hoisted_stringifications += 1
                fragments.append([_stringify(raw[nxt.text], head)])
                index += 2
                continue
            if token.kind is TokenKind.HASHHASH:
                fragments.append([token])
                index += 1
                continue
            if token.kind is TokenKind.IDENTIFIER and token.text in raw:
                prev_hash = (index > 0 and
                             body[index - 1].kind is TokenKind.HASHHASH)
                next_hash = (nxt is not None and
                             nxt.kind is TokenKind.HASHHASH)
                if prev_hash or next_hash:
                    clones = []
                    for arg_token in raw[token.text]:
                        clone = arg_token.copy()
                        clone.version = head.version
                        clones.append(clone)
                    fragments.append(clones)
                else:
                    if condition is not None:
                        expanded = self.expand(
                            [t.copy() for t in raw[token.text]], condition)
                    else:
                        expanded = [t.copy() for t in raw[token.text]]
                    fragments.append(expanded)
                index += 1
                continue
            fragments.append([token])
            index += 1
        # Resolve ## between neighbouring fragments.
        result: TokenTree = []
        i = 0
        while i < len(fragments):
            fragment = fragments[i]
            if (len(fragment) == 1 and isinstance(fragment[0], Token)
                    and fragment[0].kind is TokenKind.HASHHASH
                    and result and i + 1 < len(fragments)):
                self.stats.token_pastings += 1
                if hoisted:
                    self.stats.hoisted_pastings += 1
                right_fragment = list(fragments[i + 1])
                left = result.pop() if result else None
                right = right_fragment.pop(0) if right_fragment else None
                pasted = self._paste(left, right, head, hide)
                if pasted is not None:
                    result.append(pasted)
                result.extend(right_fragment)
                i += 2
                continue
            result.extend(fragment)
            i += 1
        return result

    def _paste(self, left, right, head: Token,
               hide: frozenset) -> Optional[Token]:
        """Concatenate two tokens into one (placemarker rules apply)."""
        if left is None or (isinstance(left, Token) and left.text == ""):
            return right if isinstance(right, Token) else right
        if right is None or (isinstance(right, Token) and right.text == ""):
            return left
        if not isinstance(left, Token) or not isinstance(right, Token):
            raise PreprocessorError(
                "token pasting across an unhoisted conditional", head)
        text = left.text + right.text
        lexed = [t for t in Lexer(text, head.file).tokens()
                 if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
        if len(lexed) != 1:
            raise PreprocessorError(
                f"pasting {left.text!r} and {right.text!r} does not form "
                "a valid token", head)
        token = lexed[0]
        token.file, token.line, token.col = head.file, head.line, head.col
        token.no_expand = left.no_expand | right.no_expand | hide
        token.version = head.version
        token.layout = left.layout
        return token


def _stringify(tokens: List[Token], head: Token) -> Token:
    """The # operator: raw argument tokens to a string literal."""
    parts: List[str] = []
    for index, token in enumerate(tokens):
        if index > 0 and token.has_space_before:
            parts.append(" ")
        text = token.text
        if token.kind in (TokenKind.STRING, TokenKind.CHARACTER):
            text = text.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(text)
    literal = '"' + "".join(parts) + '"'
    return Token(TokenKind.STRING, literal, head.file, head.line,
                 head.col, head.layout, version=head.version)


def _scan_end(tokens: List[Token], start: int) -> Optional[int]:
    """Index just past the balanced ``( ... )`` starting at ``start``,
    or None if not an invocation / incomplete."""
    if start >= len(tokens) or not tokens[start].is_punctuator("("):
        return None
    depth = 0
    for index in range(start, len(tokens)):
        if tokens[index].is_punctuator("("):
            depth += 1
        elif tokens[index].is_punctuator(")"):
            depth -= 1
            if depth == 0:
                return index + 1
    return None


def _scan_tokens_invocation(tokens: List[Token], start: int) -> str:
    """Classify the invocation shape after a macro name.

    Returns "none" (no '(' follows), "done", or "incomplete".
    """
    if start >= len(tokens):
        return "incomplete"
    if not tokens[start].is_punctuator("("):
        return "none"
    return "done" if _scan_end(tokens, start) is not None else "incomplete"
