"""Unit tests for the single-configuration oracle preprocessor."""

import pytest

from repro.cpp import PreprocessorError
from tests.support import simple_preprocess, texts


class TestConditionals:
    def test_ifdef_taken(self):
        tokens = simple_preprocess("#ifdef A\nx\n#endif",
                                   defines={"A": "1"})
        assert texts(tokens) == ["x"]

    def test_ifdef_skipped(self):
        assert texts(simple_preprocess("#ifdef A\nx\n#endif")) == []

    def test_else(self):
        assert texts(simple_preprocess(
            "#ifdef A\nx\n#else\ny\n#endif")) == ["y"]

    def test_elif(self):
        source = "#if defined(A)\na\n#elif defined(B)\nb\n#else\nc\n#endif"
        assert texts(simple_preprocess(source, {"B": "1"})) == ["b"]
        assert texts(simple_preprocess(source, {"A": "1", "B": "1"})) \
            == ["a"]
        assert texts(simple_preprocess(source)) == ["c"]

    def test_nested_skipping(self):
        source = ("#ifdef A\n#ifdef B\nx\n#endif\ny\n#endif")
        assert texts(simple_preprocess(source, {"A": "1"})) == ["y"]
        assert texts(simple_preprocess(source, {"B": "1"})) == []

    def test_skipped_branch_directives_inert(self):
        source = ("#ifdef A\n#define X 1\n#endif\nX")
        assert texts(simple_preprocess(source)) == ["X"]

    def test_if_arithmetic(self):
        assert texts(simple_preprocess("#if 3 > 2\nx\n#endif")) == ["x"]

    def test_undefined_identifier_is_zero(self):
        assert texts(simple_preprocess("#if FOO\nx\n#endif")) == []

    def test_config_value_used(self):
        source = "#if N == 8\neight\n#endif"
        assert texts(simple_preprocess(source, {"N": "8"})) == ["eight"]


class TestMacros:
    def test_define_and_expand(self):
        assert texts(simple_preprocess("#define X 5\nX")) == ["5"]

    def test_function_like(self):
        assert texts(simple_preprocess(
            "#define SQ(x) ((x)*(x))\nSQ(2)")) == list("((2)*(2))")

    def test_redefinition_order(self):
        assert texts(simple_preprocess(
            "#define A 1\nA\n#define A 2\nA")) == ["1", "2"]

    def test_paste_and_stringify(self):
        source = "#define CAT(a,b) a##b\n#define S(x) #x\nCAT(1,2) S(hi)"
        assert texts(simple_preprocess(source)) == ["12", '"hi"']

    def test_config_variables_do_not_expand_in_text(self):
        # Config variables are free macros: they drive #if but stay
        # identifiers in program text (SuperC's model).
        assert texts(simple_preprocess("VALUE", {"VALUE": "99"})) \
            == ["VALUE"]

    def test_invocation_across_lines(self):
        assert texts(simple_preprocess(
            "#define F(a,b) a-b\nF(1,\n2)")) == ["1", "-", "2"]


class TestIncludesAndErrors:
    def test_include(self):
        files = {"include/h.h": "h_body\n"}
        assert texts(simple_preprocess(
            "#include <h.h>\nmain", files=files)) == ["h_body", "main"]

    def test_guard_via_real_semantics(self):
        files = {"include/g.h":
                 "#ifndef G_H\n#define G_H\nonce\n#endif\n"}
        tokens = simple_preprocess(
            "#include <g.h>\n#include <g.h>\n", files=files)
        assert texts(tokens) == ["once"]

    def test_error_in_active_branch_raises(self):
        with pytest.raises(PreprocessorError):
            simple_preprocess("#ifdef A\n#error bad\n#endif", {"A": "1"})

    def test_error_in_skipped_branch_ignored(self):
        assert texts(simple_preprocess(
            "#ifdef A\n#error bad\n#endif\nok")) == ["ok"]

    def test_computed_include(self):
        files = {"include/x.h": "xx\n"}
        source = "#define H <x.h>\n#include H\n"
        assert texts(simple_preprocess(source, files=files)) == ["xx"]
