"""Per-unit profiles: the digest of one traced pipeline run.

A :class:`Profile` is what ``SuperCResult.profile`` carries when the
pipeline ran with a real tracer: per-phase wall time (Figure 10's
breakdown), the counter registry (FMLR forks/merges/kill-switch
events, LALR action lookups, BDD node allocations and op-cache hit
rates, macro-expansion counts), and histogram summaries (per-iteration
live subparser counts for Figure 8, hoist expansion factors).

Profiles are built from a tracer window (:meth:`repro.obs.tracer
.Tracer.mark` / ``since``) so one long-lived tracer — e.g. a batch
worker's — yields independent per-unit profiles.  ``summary_dict()``
is the flat JSON form embedded in engine unit records and rolled up
by :meth:`repro.engine.results.CorpusReport.profile_rollup`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.tracer import Span, TraceEvent, Tracer


def summarize_histogram(values: Sequence[float]) -> Dict[str, float]:
    """count/mean/max digest of one histogram (JSON-friendly)."""
    if not values:
        return {"count": 0, "mean": 0.0, "max": 0.0}
    total = float(sum(values))
    return {"count": len(values),
            "mean": round(total / len(values), 4),
            "max": max(values)}


class Profile:
    """Everything observed for one traced unit."""

    def __init__(self, phases: Dict[str, float],
                 counters: Dict[str, int],
                 histograms: Dict[str, List[float]],
                 spans: Sequence[Span] = (),
                 events: Sequence[TraceEvent] = ()):
        self.phases = phases
        self.counters = counters
        self.histograms = histograms
        self.spans = list(spans)
        self.events = list(events)

    @classmethod
    def from_window(cls, tracer: Tracer, mark: tuple,
                    phases: Optional[Dict[str, float]] = None,
                    extra_counters: Optional[Dict[str, Any]] = None) \
            -> "Profile":
        """Build a profile from everything the tracer recorded after
        ``mark``; ``phases`` (the Timing breakdown) and
        ``extra_counters`` (pipeline stats objects flattened by the
        caller) are merged in."""
        window = tracer.since(mark)
        counters = dict(window["counters"])
        if extra_counters:
            counters.update(extra_counters)
        return cls(dict(phases or {}), counters,
                   window["histograms"], window["roots"],
                   window["events"])

    # -- serialization ------------------------------------------------

    def summary_dict(self) -> dict:
        """Flat JSON form for engine records and ``--json`` payloads."""
        return {
            "phases": {name: round(value, 6)
                       for name, value in self.phases.items()},
            "counters": dict(self.counters),
            "histograms": {name: summarize_histogram(values)
                           for name, values
                           in sorted(self.histograms.items())},
            "events": len(self.events),
            "spans": sum(1 for _ in self.iter_spans()),
        }

    def iter_spans(self):
        stack = list(self.spans)
        while stack:
            span = stack.pop()
            yield span
            stack.extend(span.children)

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    # -- presentation -------------------------------------------------

    def format_summary(self) -> str:
        """The ``--profile`` text report: per-phase wall time, then
        counters grouped by namespace, then histogram digests."""
        lines = ["profile:"]
        total = self.phases.get("total") or sum(
            value for name, value in self.phases.items()
            if name != "total")
        for name in ("lex", "preprocess", "parse"):
            if name not in self.phases:
                continue
            seconds = self.phases[name]
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {name:<12} {seconds:8.4f}s  "
                         f"{share:5.1f}%")
        if total:
            lines.append(f"  {'total':<12} {total:8.4f}s")
        groups: Dict[str, List[str]] = {}
        for name in sorted(self.counters):
            namespace = name.split(".", 1)[0]
            groups.setdefault(namespace, []).append(name)
        for namespace in sorted(groups):
            parts = []
            for name in groups[namespace]:
                short = name.split(".", 1)[-1]
                value = self.counters[name]
                if isinstance(value, float):
                    parts.append(f"{short}={value:.3g}")
                else:
                    parts.append(f"{short}={value}")
            lines.append(f"  {namespace}: " + ", ".join(parts))
        for name, values in sorted(self.histograms.items()):
            digest = summarize_histogram(values)
            lines.append(f"  {name}: n={digest['count']} "
                         f"mean={digest['mean']:.4g} "
                         f"max={digest['max']:.4g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Profile(phases={self.phases}, "
                f"counters={len(self.counters)}, "
                f"histograms={len(self.histograms)})")


def merge_profile_summaries(summaries: Sequence[dict]) -> dict:
    """Corpus rollup of per-unit ``summary_dict()`` payloads: phase
    seconds and counters are summed; histogram digests are combined
    (counts summed, max of maxes, count-weighted mean)."""
    phases: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    units = 0
    for summary in summaries:
        if not summary:
            continue
        units += 1
        for name, value in (summary.get("phases") or {}).items():
            phases[name] = round(phases.get(name, 0.0) + value, 6)
        for name, value in (summary.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                counters[name] = counters.get(name, 0) + value
        for name, digest in (summary.get("histograms") or {}).items():
            into = histograms.setdefault(
                name, {"count": 0, "mean": 0.0, "max": 0.0})
            count = digest.get("count", 0)
            if count:
                merged = into["count"] + count
                into["mean"] = round(
                    (into["mean"] * into["count"]
                     + digest.get("mean", 0.0) * count) / merged, 4)
                into["count"] = merged
                into["max"] = max(into["max"], digest.get("max", 0.0))
    return {"units": units, "phases": phases, "counters": counters,
            "histograms": histograms}
