"""A maximal-munch C lexer with layout preservation.

Lexing is the first of the paper's three steps (Table 1).  The lexer:

* splices line continuations (backslash-newline) while keeping a map
  back to physical line numbers,
* strips whitespace and comments into per-token ``layout`` annotations
  instead of discarding them (so refactorings can restore source text),
* produces ``NEWLINE`` tokens at the end of every logical line, which
  the preprocessor needs to delimit directives, and
* lexes C preprocessing numbers (not C numeric constants), as the
  standard requires before preprocessing.

Keywords are not distinguished here — any identifier may be a macro
name — so keyword classification happens in the parser front-end.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.lexer.tokens import Token, TokenKind

# Multi-character punctuators, longest first so maximal munch works by
# scanning this list in order.
_PUNCTUATORS = [
    "...", "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
    "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",",
]

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


class LexerError(Exception):
    """Raised on malformed input such as an unterminated literal."""

    def __init__(self, message: str, file: str, line: int, col: int):
        super().__init__(f"{file}:{line}:{col}: {message}")
        self.file = file
        self.line = line
        self.col = col


class Lexer:
    """Tokenizes one translation-unit text."""

    def __init__(self, text: str, filename: str = "<input>"):
        self.filename = filename
        self._text, self._line_map = _splice_continuations(text)
        self._pos = 0
        self._col_base = 0  # offset of current physical line start

    # -- public API ----------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens including NEWLINEs, ending with EOF."""
        text = self._text
        length = len(text)
        while True:
            layout = self._consume_layout()
            if self._pos >= length:
                yield self._make(TokenKind.EOF, "", layout)
                return
            char = text[self._pos]
            if char == "\n":
                token = self._make(TokenKind.NEWLINE, "\n", layout)
                self._pos += 1
                yield token
                continue
            yield self._lex_token(layout)

    # -- layout ----------------------------------------------------------

    def _consume_layout(self) -> str:
        """Consume horizontal whitespace and comments (not newlines)."""
        text = self._text
        length = len(text)
        start = self._pos
        while self._pos < length:
            char = text[self._pos]
            if char in " \t\v\f\r":
                self._pos += 1
            elif text.startswith("/*", self._pos):
                end = text.find("*/", self._pos + 2)
                if end < 0:
                    line, col = self._where(self._pos)
                    raise LexerError("unterminated comment",
                                     self.filename, line, col)
                self._pos = end + 2
            elif text.startswith("//", self._pos):
                end = text.find("\n", self._pos)
                self._pos = length if end < 0 else end
            else:
                break
        return text[start:self._pos]

    # -- tokens ----------------------------------------------------------

    def _lex_token(self, layout: str) -> Token:
        text = self._text
        pos = self._pos
        char = text[pos]
        # Wide literals: L'x' and L"x".
        if char == "L" and pos + 1 < len(text) and text[pos + 1] in "'\"":
            return self._lex_literal(layout, prefix="L")
        if char in _IDENT_START:
            end = pos + 1
            while end < len(text) and text[end] in _IDENT_CONT:
                end += 1
            token = self._make(TokenKind.IDENTIFIER, text[pos:end], layout)
            self._pos = end
            return token
        if char in _DIGITS or (char == "." and pos + 1 < len(text)
                               and text[pos + 1] in _DIGITS):
            return self._lex_pp_number(layout)
        if char in "'\"":
            return self._lex_literal(layout, prefix="")
        if text.startswith("##", pos):
            token = self._make(TokenKind.HASHHASH, "##", layout)
            self._pos = pos + 2
            return token
        if char == "#":
            token = self._make(TokenKind.HASH, "#", layout)
            self._pos = pos + 1
            return token
        for punct in _PUNCTUATORS:
            if text.startswith(punct, pos):
                token = self._make(TokenKind.PUNCTUATOR, punct, layout)
                self._pos = pos + len(punct)
                return token
        token = self._make(TokenKind.OTHER, char, layout)
        self._pos = pos + 1
        return token

    def _lex_pp_number(self, layout: str) -> Token:
        """A C preprocessing number: more permissive than C constants."""
        text = self._text
        pos = self._pos
        end = pos + 1
        while end < len(text):
            char = text[end]
            if char in "eEpP" and end + 1 < len(text) and text[end + 1] in "+-":
                end += 2
            elif char in _IDENT_CONT or char == ".":
                end += 1
            else:
                break
        token = self._make(TokenKind.NUMBER, text[pos:end], layout)
        self._pos = end
        return token

    def _lex_literal(self, layout: str, prefix: str) -> Token:
        text = self._text
        pos = self._pos
        quote_pos = pos + len(prefix)
        quote = text[quote_pos]
        end = quote_pos + 1
        terminated = False
        while end < len(text):
            char = text[end]
            if char == "\\":
                # An escape consumes the next character even if it is
                # the quote; a backslash at EOF leaves the literal open.
                end += 2
                continue
            if char == quote:
                end += 1
                terminated = True
                break
            if char == "\n":
                break
            end += 1
        end = min(end, len(text))
        if not terminated:
            line, col = self._where(pos)
            kind = "character" if quote == "'" else "string"
            raise LexerError(f"unterminated {kind} constant",
                             self.filename, line, col)
        kind = TokenKind.CHARACTER if quote == "'" else TokenKind.STRING
        token = self._make(kind, text[pos:end], layout)
        self._pos = end
        return token

    # -- positions ---------------------------------------------------------

    def _where(self, pos: int) -> Tuple[int, int]:
        line = self._line_map[pos] if pos < len(self._line_map) else (
            self._line_map[-1] if self._line_map else 1)
        # Column: distance back to the previous newline in spliced text.
        newline = self._text.rfind("\n", 0, pos)
        return line, pos - newline

    def _make(self, kind: TokenKind, text: str, layout: str) -> Token:
        line, col = self._where(self._pos)
        return Token(kind, text, self.filename, line, col, layout)


def _splice_continuations(text: str) -> Tuple[str, List[int]]:
    """Remove backslash-newline pairs, keeping a char->line map."""
    out: List[str] = []
    line_map: List[int] = []
    line = 1
    i = 0
    length = len(text)
    while i < length:
        if text[i] == "\\" and i + 1 < length and text[i + 1] == "\n":
            line += 1
            i += 2
            continue
        # Also handle backslash + CRLF.
        if text[i] == "\\" and text.startswith("\r\n", i + 1):
            line += 1
            i += 3
            continue
        out.append(text[i])
        line_map.append(line)
        if text[i] == "\n":
            line += 1
        i += 1
    return "".join(out), line_map


def lex(text: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``text``, returning all tokens including the final EOF."""
    return list(Lexer(text, filename).tokens())


def lex_logical_lines(text: str,
                      filename: str = "<input>") -> List[List[Token]]:
    """Tokenize and group into logical lines (NEWLINE/EOF stripped).

    Empty lines are preserved as empty lists so the preprocessor can
    track conditional nesting by line.
    """
    lines: List[List[Token]] = []
    current: List[Token] = []
    for token in Lexer(text, filename).tokens():
        if token.kind is TokenKind.NEWLINE:
            lines.append(current)
            current = []
        elif token.kind is TokenKind.EOF:
            if current:
                lines.append(current)
        else:
            current.append(token)
    return lines
