"""Figure 8: subparser counts per FMLR main-loop iteration.

Parses every compilation unit at each optimization level and reports
(a) the 99th percentile and maximum subparser counts, with MAPR's
kill-switch behaviour, and (b) the cumulative distribution.

Expected shape (paper): the full optimization stack needs the fewest
subparsers (99th 21, max 39 on Linux); dropping optimizations
increases counts (Follow-Set Only max 468, a ~12x gap); MAPR trips the
kill switch on most units.
"""

import pytest

from benchmarks.conftest import emit
from repro.eval import figure8
from repro.parser.fmlr import OPTIMIZATION_LEVELS

# A reduced kill switch keeps the MAPR explosion measurable in minutes
# (the mechanism — exponential forking on Figure 6 initializers — is
# identical at any threshold; the paper uses 16,000).
KILL_SWITCH = 500


def test_figure8_subparser_counts(benchmark, sweep_corpus):
    holder = {}

    def run():
        holder["table"] = figure8(sweep_corpus,
                                  kill_switch=KILL_SWITCH)
        return holder["table"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = holder["table"]

    lines = ["", "=" * 66,
             "Figure 8a: subparser counts per FMLR loop iteration",
             f"{'Optimization level':<26}{'99th %':>9}{'Max.':>9}"]
    for level in OPTIMIZATION_LEVELS:
        dist = table[level]
        if dist.exploded_units:
            share = 100 * dist.exploded_units // dist.total_units
            lines.append(f"{level:<26}{'>' + str(KILL_SWITCH):>9}"
                         f"  on {share}% of comp. units")
        else:
            lines.append(f"{level:<26}{dist.p99:>9}{dist.maximum:>9}")
    lines.append("")
    lines.append("Figure 8b: cumulative distribution "
                 "(fraction of iterations with <= N subparsers)")
    points = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64]
    header = f"{'level':<26}" + "".join(f"{p:>6}" for p in points)
    lines.append(header)
    for level in OPTIMIZATION_LEVELS:
        dist = table[level]
        if dist.exploded_units:
            continue
        cdf = dict(dist.cdf(points))
        row = f"{level:<26}" + "".join(
            f"{cdf.get(p, 1.0):>6.2f}" for p in points)
        lines.append(row)
    lines.append("=" * 66)
    emit(lines)

    best = table["Shared, Lazy, & Early"]
    follow_only = table["Follow-Set Only"]
    mapr = table["MAPR"]
    # Shape: full optimizations <= follow-set only; MAPR explodes.
    assert best.exploded_units == 0
    assert best.maximum <= follow_only.maximum
    assert mapr.exploded_units == mapr.total_units  # all units explode
    benchmark.extra_info["levels"] = {
        level: (dist.p99, dist.maximum, dist.exploded_units)
        for level, dist in table.items()}
