"""Hoisting static conditionals (Algorithm 1, §3.1).

Preprocessor operations — function-like invocations, token pasting,
stringification, computed includes, conditional expressions — are only
defined over ordinary tokens.  ``hoist`` rewrites a mixed sequence of
tokens and conditionals into a single conditional whose branches are
*flat* token lists: ordinary tokens are appended to every branch, and
each embedded conditional multiplies the branch set (the cross product
``C × B`` of the paper).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.cpp.tree import Conditional, TokenTree
from repro.lexer.tokens import Token

# A hoisted result: mutually exclusive (condition, flat tokens) pairs
# covering the input condition.
HoistedBranches = List[Tuple[Any, List[Token]]]


def hoist(condition: Any, items: TokenTree,
          tracer: Any = None) -> HoistedBranches:
    """Flatten ``items`` under ``condition`` per Algorithm 1.

    Every branch of the result has a mutually exclusive presence
    condition; together they cover ``condition`` exactly (implicit
    else-branches are materialized as empty token lists).  Infeasible
    combinations (condition simplifies to false) are dropped.

    A ``tracer`` (:mod:`repro.obs`) records the *expansion factor* —
    how many flat branches one mixed sequence hoisted into, the paper's
    ``C × B`` blowup — into the ``hoist.expansion`` histogram, once per
    top-level call (recursive inner hoists are part of that factor,
    not separate observations).
    """
    result = _hoist(condition, items)
    if tracer is not None and tracer.enabled:
        tracer.record("hoist.expansion", len(result))
    return result


def _hoist(condition: Any, items: TokenTree) -> HoistedBranches:
    # C <- [(c, [])]: one empty branch covering everything.
    result: HoistedBranches = [(condition, [])]
    for item in items:
        if isinstance(item, Token):
            # Ordinary tokens occur in every embedded configuration.
            for _, tokens in result:
                tokens.append(item)
            continue
        # item is a conditional: recursively hoist each branch, tracking
        # the remainder for the implicit else-branch.
        hoisted_branches: HoistedBranches = []
        remainder = condition
        for branch_cond, subtree in item.branches:
            remainder = remainder & ~branch_cond
            for sub_cond, tokens in _hoist(branch_cond, subtree):
                hoisted_branches.append((sub_cond, tokens))
        if not remainder.is_false():
            hoisted_branches.append((remainder, []))
        # C <- C x B.
        combined: HoistedBranches = []
        for left_cond, left_tokens in result:
            for right_cond, right_tokens in hoisted_branches:
                joint = left_cond & right_cond
                if joint.is_false():
                    continue
                combined.append((joint, left_tokens + right_tokens))
        result = combined
    return result


def branch_count(items: TokenTree, condition: Any) -> int:
    """How many branches hoisting would produce (without building them);
    used to guard against pathological blow-up."""
    total = 1
    for item in items:
        if isinstance(item, Conditional):
            per_item = 0
            remainder = condition
            for branch_cond, subtree in item.branches:
                remainder = remainder & ~branch_cond
                per_item += branch_count(subtree, branch_cond)
            if not remainder.is_false():
                per_item += 1
            total *= max(per_item, 1)
    return total


def unhoist(branches: HoistedBranches) -> TokenTree:
    """Wrap hoisted branches back into a tree item list.

    A single branch splices inline; several become one Conditional.
    """
    live = [(cond, list(tokens)) for cond, tokens in branches
            if not cond.is_false()]
    if not live:
        return []
    if len(live) == 1:
        return list(live[0][1])
    return [Conditional([(cond, list(tokens)) for cond, tokens in live])]
