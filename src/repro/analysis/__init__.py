"""Variability-aware analyses over all-configuration parse results."""

from repro.analysis.blocks import (Block, allyes_assignment,
                                   always_together, block_histogram,
                                   collect_blocks,
                                   configuration_coverage, dead_blocks,
                                   mutually_exclusive)
from repro.analysis.refactor import (Edit, RenameConflict, RenamePlan,
                                     apply_edits, occurrences,
                                     plan_rename, rename_in_files)
from repro.analysis.symbols import (SymbolInfo, conditional_symbols,
                                    file_scope_symbols,
                                    multiply_declared)
from repro.analysis.undeclared import UndeclaredUse, find_undeclared

__all__ = [
    "Block", "Edit", "RenameConflict", "RenamePlan", "SymbolInfo",
    "UndeclaredUse", "allyes_assignment", "always_together",
    "apply_edits", "block_histogram", "collect_blocks",
    "conditional_symbols", "configuration_coverage", "dead_blocks",
    "file_scope_symbols", "find_undeclared", "multiply_declared",
    "mutually_exclusive", "occurrences", "plan_rename",
    "rename_in_files",
]
