"""Variability-aware undeclared-identifier analysis.

The paper's future work (§8) is configuration-preserving *semantic*
analysis with multiply-defined symbols.  This module is a first such
analysis: it walks the all-configuration AST with a conditional scoped
environment and reports identifier uses that are undeclared in *some*
configurations — the classic Linux bug class where a declaration sits
under ``#ifdef CONFIG_FOO`` but a use does not.

Scope and precision:

* declarations tracked: file-scope declarations and definitions,
  function parameters, block-scope declarations, enum constants,
  function names;
* uses tracked: identifiers in expression position (member names,
  designators, goto labels, struct tags, and typedef uses are not
  object-namespace uses and are skipped);
* calls to functions with no visible declaration are reported as
  ``implicit-function`` (C89 implicit declaration) separately from
  object uses.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.lexer.tokens import Token, TokenKind
from repro.parser.ast import Node, StaticChoice


class UndeclaredUse:
    """One use that is undeclared under ``condition``."""

    __slots__ = ("name", "token", "condition", "kind")

    def __init__(self, name: str, token: Optional[Token],
                 condition: Any, kind: str):
        self.name = name
        self.token = token
        self.condition = condition
        self.kind = kind  # "object" or "implicit-function"

    def __repr__(self) -> str:
        where = ""
        if self.token is not None:
            where = f"{self.token.file}:{self.token.line}: "
        return (f"UndeclaredUse({where}{self.name!r} [{self.kind}] "
                f"when {self.condition.to_expr_string()})")


class _Env:
    """Conditional scoped environment: name -> defined-condition."""

    def __init__(self, manager: Any):
        self.manager = manager
        self.scopes: List[Dict[str, Any]] = [{}]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, condition: Any) -> None:
        scope = self.scopes[-1]
        existing = scope.get(name, self.manager.false)
        scope[name] = existing | condition

    def declared_condition(self, name: str) -> Any:
        result = self.manager.false
        for scope in self.scopes:
            if name in scope:
                result = result | scope[name]
        return result


def find_undeclared(ast: Any, manager: Any,
                    externals: Tuple[str, ...] = ()) \
        -> List[UndeclaredUse]:
    """Report uses undeclared in some feasible configuration.

    ``externals`` names identifiers assumed declared elsewhere (other
    translation units, the standard library).
    """
    env = _Env(manager)
    for name in externals:
        env.declare(name, manager.true)
    analysis = _Analysis(manager, env)
    analysis.walk_unit(ast, manager.true)
    return analysis.findings


class _Analysis:
    def __init__(self, manager: Any, env: _Env):
        self.manager = manager
        self.env = env
        self.findings: List[UndeclaredUse] = []
        self._reported: Dict[Tuple[str, int, int, str], Any] = {}

    # -- structure -----------------------------------------------------------

    def walk_unit(self, value: Any, condition: Any) -> None:
        """File scope: declarations and definitions in order."""
        if isinstance(value, tuple):
            for element in value:
                self.walk_unit(element, condition)
        elif isinstance(value, StaticChoice):
            for branch_cond, branch in value.branches:
                self.walk_unit(branch, condition & branch_cond)
        elif isinstance(value, Node):
            if value.name == "FunctionDefinition":
                self._function_definition(value, condition)
            elif value.name == "Declaration":
                self._declaration(value, condition)
            else:
                for child in value.children:
                    self.walk_unit(child, condition)

    def _declaration(self, node: Node, condition: Any) -> None:
        children = node.children
        specifiers = children[0] if children else ()
        self._collect_enum_constants(specifiers, condition)
        if len(children) >= 2:
            # Initializers are uses evaluated before registration is
            # complete in C, but self-reference is legal; register
            # first, then analyze initializer expressions.
            for name in _declarator_names(children[1]):
                self.env.declare(name, condition)
            self._uses_in_initializers(children[1], condition)

    def _collect_enum_constants(self, value: Any,
                                condition: Any) -> None:
        if isinstance(value, Node):
            if value.name == "Enumerator" and value.children:
                first = value.children[0]
                if isinstance(first, Token):
                    self.env.declare(first.text, condition)
                # Enumerator values are constant expressions: uses.
                for child in value.children[1:]:
                    self.expression(child, condition)
                return
            for child in value.children:
                self._collect_enum_constants(child, condition)
        elif isinstance(value, tuple):
            for element in value:
                self._collect_enum_constants(element, condition)
        elif isinstance(value, StaticChoice):
            for branch_cond, branch in value.branches:
                self._collect_enum_constants(branch,
                                             condition & branch_cond)

    def _uses_in_initializers(self, value: Any, condition: Any) -> None:
        if isinstance(value, Node):
            if value.name == "InitializedDeclarator":
                self.expression(value.children[-1], condition)
                return
            for child in value.children:
                self._uses_in_initializers(child, condition)
        elif isinstance(value, tuple):
            for element in value:
                self._uses_in_initializers(element, condition)
        elif isinstance(value, StaticChoice):
            for branch_cond, branch in value.branches:
                self._uses_in_initializers(branch,
                                           condition & branch_cond)

    def _function_definition(self, node: Node, condition: Any) -> None:
        children = node.children
        declarator = children[-2] if len(children) >= 2 else None
        body = children[-1]
        name = _declarator_name(declarator)
        if name is not None:
            self.env.declare(name, condition)
        self.env.push()
        if declarator is not None:
            for param in _parameter_names(declarator):
                self.env.declare(param, condition)
        self.statement(body, condition, new_scope=False)
        self.env.pop()

    # -- statements -------------------------------------------------------------

    def statement(self, value: Any, condition: Any,
                  new_scope: bool = True) -> None:
        if isinstance(value, StaticChoice):
            for branch_cond, branch in value.branches:
                self.statement(branch, condition & branch_cond,
                               new_scope)
            return
        if isinstance(value, tuple):
            for element in value:
                self.statement(element, condition)
            return
        if not isinstance(value, Node):
            return
        name = value.name
        if name == "CompoundStatement":
            if new_scope:
                self.env.push()
            for child in value.children:
                self.statement(child, condition)
            if new_scope:
                self.env.pop()
        elif name == "Declaration":
            self._declaration(value, condition)
        elif name == "FunctionDefinition":
            self._function_definition(value, condition)
        elif name == "ExpressionStatement":
            for child in value.children:
                self.expression(child, condition)
        elif name in ("IfStatement", "IfElseStatement",
                      "SwitchStatement", "WhileStatement"):
            # children: kw ( Expression ) Statement [else Statement]
            self.expression(value.children[2], condition)
            for child in value.children[3:]:
                self.statement(child, condition)
        elif name == "DoStatement":
            self.statement(value.children[1], condition)
            self.expression(value.children[4], condition)
        elif name == "ForStatement":
            self.env.push()
            for child in value.children[2:-2]:
                if isinstance(child, Node) and child.name == \
                        "Declaration":
                    self._declaration(child, condition)
                else:
                    self.expression(child, condition)
            self.statement(value.children[-1], condition)
            self.env.pop()
        elif name == "ReturnStatement":
            for child in value.children[1:]:
                self.expression(child, condition)
        elif name in ("CaseStatement", "DefaultStatement",
                      "LabeledStatement", "CaseRangeStatement"):
            for child in value.children[1:]:
                self.statement(child, condition)
                if name in ("CaseStatement", "CaseRangeStatement"):
                    break  # the expression child handled below
            if name in ("CaseStatement", "CaseRangeStatement"):
                self.expression(value.children[1], condition)
                self.statement(value.children[-1], condition)
        elif name in ("GotoStatement", "ContinueStatement",
                      "BreakStatement", "EmptyStatement",
                      "AsmStatement", "LocalLabelDeclaration"):
            return
        else:
            # Conservatively treat remaining node kinds structurally.
            for child in value.children:
                self.statement(child, condition)

    # -- expressions ------------------------------------------------------------

    def expression(self, value: Any, condition: Any) -> None:
        if isinstance(value, Token):
            if value.kind is TokenKind.IDENTIFIER:
                self._use(value, condition, "object")
            return
        if isinstance(value, StaticChoice):
            for branch_cond, branch in value.branches:
                self.expression(branch, condition & branch_cond)
            return
        if isinstance(value, tuple):
            for element in value:
                self.expression(element, condition)
            return
        if not isinstance(value, Node):
            return
        name = value.name
        if name in ("DirectSelection", "IndirectSelection"):
            self.expression(value.children[0], condition)
            return  # the member name is not an object use
        if name == "FunctionCall":
            callee = value.children[0]
            if isinstance(callee, Token) and \
                    callee.kind is TokenKind.IDENTIFIER:
                self._use(callee, condition, "implicit-function")
            else:
                self.expression(callee, condition)
            for child in value.children[1:]:
                self.expression(child, condition)
            return
        if name in ("SizeofType", "AlignofType", "CastExpression",
                    "CompoundLiteral", "VaArg", "OffsetofExpression"):
            # Type operands are not object uses; expression operands
            # are.
            for child in value.children:
                if isinstance(child, Node) and child.name == "TypeName":
                    continue
                if isinstance(child, Token):
                    continue
                self.expression(child, condition)
            return
        if name == "StatementExpression":
            for child in value.children:
                self.statement(child, condition)
            return
        if name == "LabelAddress":
            return
        for child in value.children:
            self.expression(child, condition)

    def _use(self, token: Token, condition: Any, kind: str) -> None:
        declared = self.env.declared_condition(token.text)
        missing = condition & ~declared
        if missing.is_false():
            return
        key = (token.text, token.line, token.col, kind)
        previous = self._reported.get(key)
        if previous is not None:
            missing = missing | previous
        self._reported[key] = missing
        self.findings = [f for f in self.findings
                         if (f.name, f.token.line if f.token else 0,
                             f.token.col if f.token else 0, f.kind)
                         != key]
        self.findings.append(UndeclaredUse(token.text, token, missing,
                                           kind))


# -- declarator helpers ------------------------------------------------------


def _declarator_name(value: Any) -> Optional[str]:
    if isinstance(value, Token):
        return value.text if value.kind is TokenKind.IDENTIFIER \
            else None
    if isinstance(value, Node):
        children = value.children
        if not children:
            return None
        if value.name == "PointerDeclarator":
            return _declarator_name(children[-1])
        if value.name in ("ArrayDeclarator", "FunctionDeclarator",
                          "InitializedDeclarator", "AsmDeclarator",
                          "BitField"):
            return _declarator_name(children[0])
        if value.name == "AttributedDeclarator":
            return _declarator_name(children[-1])
    return None


def _declarator_names(value: Any) -> List[str]:
    names: List[str] = []
    if isinstance(value, tuple):
        for element in value:
            names.extend(_declarator_names(element))
    elif isinstance(value, StaticChoice):
        for _cond, branch in value.branches:
            names.extend(_declarator_names(branch))
    else:
        name = _declarator_name(value)
        if name is not None:
            names.append(name)
    return names


def _parameter_names(declarator: Any) -> List[str]:
    """Parameter names of a function declarator."""
    names: List[str] = []
    if isinstance(declarator, Node):
        if declarator.name == "FunctionDeclarator":
            for child in declarator.children[1:]:
                names.extend(_parameters_of(child))
            return names
        for child in declarator.children:
            names.extend(_parameter_names(child))
    return names


def _parameters_of(value: Any) -> List[str]:
    names: List[str] = []
    if isinstance(value, tuple):
        for element in value:
            names.extend(_parameters_of(element))
    elif isinstance(value, StaticChoice):
        for _cond, branch in value.branches:
            names.extend(_parameters_of(branch))
    elif isinstance(value, Node):
        if value.name == "ParameterDeclaration" and \
                len(value.children) >= 2:
            name = _declarator_name(value.children[1])
            if name is not None:
                names.append(name)
        else:
            for child in value.children:
                names.extend(_parameters_of(child))
    return names
