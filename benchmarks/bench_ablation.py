"""Ablation: AST effects of the FMLR optimizations (§6.2's claim).

Beyond subparser counts (Figure 8), the paper argues the optimizations
"also help keep the AST smaller: fewer forked subparsers means fewer
static choice nodes in the tree, and earlier merging means more tree
fragments outside static choice nodes, i.e., shared between
configurations."  This bench quantifies that: choice-node counts and
total AST sizes per optimization level on the sweep corpus.

(Not a table/figure in the paper; an ablation of the design choices
DESIGN.md calls out.)
"""

from benchmarks.conftest import emit
from repro.parser.ast import count_choice_nodes, count_nodes
from repro.parser.fmlr import OPTIMIZATION_LEVELS
from repro.superc import SuperC

LEVELS = ["Shared, Lazy, & Early", "Shared", "Lazy", "Follow-Set Only"]


def test_ablation_ast_size(benchmark, sweep_corpus):
    holder = {}

    def run():
        rows = {}
        for level in LEVELS:
            superc = SuperC(sweep_corpus.filesystem(),
                            include_paths=sweep_corpus.include_paths,
                            options=OPTIMIZATION_LEVELS[level])
            choices = 0
            nodes = 0
            max_subparsers = 0
            for unit in sweep_corpus.units:
                result = superc.parse_file(unit)
                assert result.ok, (level, unit)
                choices += count_choice_nodes(result.ast)
                nodes += count_nodes(result.ast)
                max_subparsers = max(
                    max_subparsers, result.parse.stats.max_subparsers)
            rows[level] = (choices, nodes, max_subparsers)
        holder["rows"] = rows
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]

    lines = ["", "=" * 64,
             "Ablation: AST size per optimization level",
             f"{'Level':<26}{'choice nodes':>14}{'AST nodes':>12}"
             f"{'max subp':>10}"]
    for level in LEVELS:
        choices, nodes, max_subparsers = rows[level]
        lines.append(f"{level:<26}{choices:>14}{nodes:>12}"
                     f"{max_subparsers:>10}")
    lines.append("=" * 64)
    emit(lines)
    benchmark.extra_info["rows"] = rows

    best = rows["Shared, Lazy, & Early"]
    worst = rows["Follow-Set Only"]
    # The full stack should not produce more choice nodes than the
    # unoptimized engine.
    assert best[0] <= worst[0]
