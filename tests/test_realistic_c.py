"""Whole-program grammar coverage: realistic C sources.

Each source is a small but complete, realistic C module (list, hash
table, string utilities, tokenizer, ring buffer) exercising broad
grammar surface in combination — the shapes real code mixes together,
not isolated constructs.
"""

import pytest

from repro.bdd import BDDManager
from repro.cgrammar import c_tables, classify, make_context_factory
from repro.lexer import lex
from repro.lexer.tokens import TokenKind
from repro.parser import LRParser
from repro.superc import parse_c

LINKED_LIST = """\
typedef unsigned long size_t;

struct list_node {
    struct list_node *next;
    struct list_node *prev;
    void *payload;
};

struct list {
    struct list_node head;
    size_t length;
};

static void list_init(struct list *l)
{
    l->head.next = &l->head;
    l->head.prev = &l->head;
    l->length = 0;
}

static void list_insert(struct list_node *entry,
                        struct list_node *before)
{
    entry->next = before;
    entry->prev = before->prev;
    before->prev->next = entry;
    before->prev = entry;
}

static void list_push_back(struct list *l, struct list_node *entry)
{
    list_insert(entry, &l->head);
    l->length++;
}

static struct list_node *list_pop_front(struct list *l)
{
    struct list_node *victim = l->head.next;
    if (victim == &l->head)
        return (void *)0;
    victim->prev->next = victim->next;
    victim->next->prev = victim->prev;
    l->length--;
    return victim;
}

static size_t list_count_if(const struct list *l,
                            int (*pred)(const struct list_node *))
{
    size_t n = 0;
    const struct list_node *it;
    for (it = l->head.next; it != &l->head; it = it->next)
        if (pred(it))
            n++;
    return n;
}
"""

HASH_TABLE = """\
typedef unsigned int u32;
typedef unsigned long size_t;

enum bucket_state { EMPTY, OCCUPIED, TOMBSTONE };

struct bucket {
    enum bucket_state state;
    u32 hash;
    const char *key;
    void *value;
};

struct table {
    struct bucket *buckets;
    size_t capacity;
    size_t used;
};

static u32 fnv1a(const char *s)
{
    u32 h = 2166136261u;
    while (*s) {
        h ^= (u32)(unsigned char)*s++;
        h *= 16777619u;
    }
    return h;
}

static int str_eq(const char *a, const char *b)
{
    while (*a && *a == *b) {
        a++;
        b++;
    }
    return *a == *b;
}

static struct bucket *probe(struct table *t, const char *key,
                            u32 hash)
{
    size_t mask = t->capacity - 1;
    size_t i = hash & mask;
    struct bucket *first_tombstone = (void *)0;
    for (;;) {
        struct bucket *b = &t->buckets[i];
        switch (b->state) {
        case EMPTY:
            return first_tombstone ? first_tombstone : b;
        case TOMBSTONE:
            if (!first_tombstone)
                first_tombstone = b;
            break;
        case OCCUPIED:
            if (b->hash == hash && str_eq(b->key, key))
                return b;
            break;
        }
        i = (i + 1) & mask;
    }
}

static int table_put(struct table *t, const char *key, void *value)
{
    u32 h = fnv1a(key);
    struct bucket *b = probe(t, key, h);
    int fresh = b->state != OCCUPIED;
    if (fresh)
        t->used++;
    b->state = OCCUPIED;
    b->hash = h;
    b->key = key;
    b->value = value;
    return fresh;
}
"""

STRING_UTILS = """\
typedef unsigned long size_t;

static size_t str_len(const char *s)
{
    const char *p = s;
    while (*p)
        p++;
    return (size_t)(p - s);
}

static char *str_chr(const char *s, int c)
{
    do {
        if (*s == (char)c)
            return (char *)s;
    } while (*s++);
    return (void *)0;
}

static int str_to_int(const char *s, int *out)
{
    int sign = 1;
    long acc = 0;
    if (*s == '-') {
        sign = -1;
        s++;
    } else if (*s == '+') {
        s++;
    }
    if (*s < '0' || *s > '9')
        return -1;
    while (*s >= '0' && *s <= '9') {
        acc = acc * 10 + (*s - '0');
        if (acc > 2147483647L)
            return -1;
        s++;
    }
    *out = (int)(sign * acc);
    return *s ? -1 : 0;
}

static void str_rev(char *s, size_t n)
{
    size_t i, j;
    for (i = 0, j = n - 1; i < j; i++, j--) {
        char tmp = s[i];
        s[i] = s[j];
        s[j] = tmp;
    }
}

static const char *const month_names[12] = {
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec",
};

static int month_index(const char *name)
{
    int i;
    for (i = 0; i < (int)(sizeof month_names /
                          sizeof month_names[0]); i++) {
        const char *a = month_names[i];
        const char *b = name;
        while (*a && *a == *b) {
            a++;
            b++;
        }
        if (!*a && !*b)
            return i;
    }
    return -1;
}
"""

TOKENIZER = """\
enum token_kind {
    TOK_EOF = 0,
    TOK_NUMBER,
    TOK_IDENT,
    TOK_PUNCT,
};

struct token {
    enum token_kind kind;
    const char *start;
    int length;
    long value;
};

struct cursor {
    const char *at;
    int line;
};

static int is_digit(int c) { return c >= '0' && c <= '9'; }
static int is_alpha(int c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           c == '_';
}

static void skip_space(struct cursor *cur)
{
    for (;;) {
        switch (*cur->at) {
        case '\\n':
            cur->line++;
            /* fallthrough */
        case ' ':
        case '\\t':
            cur->at++;
            continue;
        default:
            return;
        }
    }
}

static struct token next_token(struct cursor *cur)
{
    struct token t = { TOK_EOF, 0, 0, 0 };
    skip_space(cur);
    t.start = cur->at;
    if (!*cur->at)
        return t;
    if (is_digit(*cur->at)) {
        long v = 0;
        while (is_digit(*cur->at)) {
            v = v * 10 + (*cur->at - '0');
            cur->at++;
        }
        t.kind = TOK_NUMBER;
        t.value = v;
    } else if (is_alpha(*cur->at)) {
        while (is_alpha(*cur->at) || is_digit(*cur->at))
            cur->at++;
        t.kind = TOK_IDENT;
    } else {
        cur->at++;
        t.kind = TOK_PUNCT;
    }
    t.length = (int)(cur->at - t.start);
    return t;
}

static long sum_numbers(const char *text)
{
    struct cursor cur = { text, 1 };
    long total = 0;
    struct token t;
    while ((t = next_token(&cur)).kind != TOK_EOF)
        if (t.kind == TOK_NUMBER)
            total += t.value;
    return total;
}
"""

RING_BUFFER = """\
typedef unsigned int u32;

#define RING_SIZE 64

struct ring {
    u32 data[RING_SIZE];
    u32 head;
    u32 tail;
};

static inline u32 ring_mask(u32 v) { return v & (RING_SIZE - 1); }

static inline int ring_empty(const struct ring *r)
{
    return r->head == r->tail;
}

static inline int ring_full(const struct ring *r)
{
    return ring_mask(r->head + 1) == ring_mask(r->tail);
}

static int ring_push(struct ring *r, u32 value)
{
    if (ring_full(r))
        return -1;
    r->data[ring_mask(r->head)] = value;
    r->head = ring_mask(r->head + 1);
    return 0;
}

static int ring_pop(struct ring *r, u32 *out)
{
    if (ring_empty(r))
        return -1;
    *out = r->data[ring_mask(r->tail)];
    r->tail = ring_mask(r->tail + 1);
    return 0;
}

static u32 ring_drain(struct ring *r)
{
    u32 value, acc = 0;
    while (ring_pop(r, &value) == 0)
        acc ^= value;
    return acc;
}
"""

PROGRAMS = {
    "linked_list": LINKED_LIST,
    "hash_table": HASH_TABLE,
    "string_utils": STRING_UTILS,
    "tokenizer": TOKENIZER,
    "ring_buffer": RING_BUFFER,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_whole_program_parses(name):
    result = parse_c(PROGRAMS[name])
    assert result.ok, [str(f) for f in result.failures][:3]
    # Nothing variable here: a single accepted configuration.
    assert len(result.parse.accepted) == 1
    assert result.parse.stats.max_subparsers == 1


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_whole_program_plain_lr(name):
    from tests.support import simple_preprocess

    manager = BDDManager()
    parser = LRParser(c_tables(), classify,
                      context_factory=make_context_factory(manager),
                      condition=manager.true)
    tokens = [t for t in simple_preprocess(PROGRAMS[name])
              if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
    assert parser.parse(tokens) is not None


def test_programs_with_variability_wrapper():
    """The same realistic modules still parse when spliced into one
    unit under different configurations."""
    source = ("#ifdef CONFIG_LISTS\n" + LINKED_LIST + "\n#endif\n" +
              "#ifdef CONFIG_RING\n" + RING_BUFFER + "\n#endif\n" +
              "int anchor;\n")
    result = parse_c(source)
    assert result.ok, [str(f) for f in result.failures][:3]
    assert result.parse.stats.max_subparsers <= 4
