"""Remote sessions for the parse daemon: one client, any transport.

:func:`connect` turns an endpoint URL into a :class:`RemoteSession`:

* ``unix:/run/superc.sock`` (or a bare filesystem path) — the
  newline-delimited JSON socket dialect over a Unix-domain socket;
* ``tcp:host:port`` — the same dialect over TCP;
* ``http://host:port`` — the HTTP/JSON frontend
  (:mod:`repro.serve.http`).

All three speak the same protocol core (:mod:`repro.serve.protocol`):
the same ops, the same response envelopes, the same statuses.  The
transports differ only in framing — :class:`SocketTransport` writes
newline-delimited JSON and matches responses by ``id``;
:class:`HttpTransport` maps each op onto its route from
:data:`~repro.serve.protocol.HTTP_ROUTES` and reads one
Content-Length-framed reply per request over a keep-alive connection.

``RemoteSession.parse`` wraps the response record in
:class:`repro.engine.UnitResult`, so a served parse satisfies the same
structural Result protocol (``status/ok/degraded/diagnostics/timing/
profile``) as a local ``repro.api.Session.parse`` — callers can switch
between in-process and daemon parsing without changing a line.

**Fault tolerance.**  A daemon restarting under supervision refuses
connections (``ECONNREFUSED``), tears existing ones
(``ECONNRESET``/EOF), or — over HTTP — drops a reply mid-body
(``IncompleteRead``); :meth:`Transport.request` absorbs all of that by
reconnecting and resending under bounded, deterministic seeded-jitter
exponential backoff.  When the retry budget is spent it returns a
*structured* ``{"status": "unavailable", ...}`` response instead of
raising a raw transport error, so callers (and the CLI) handle a down
daemon the same way they handle a shed or timed-out request.  Every op
in the protocol is idempotent, so a resend after a torn connection is
safe.

:class:`ServeClient` — the PR 6 socket client — remains as a
deprecated alias of :class:`SocketTransport`; new code should call
:func:`connect` (also exported as ``repro.api.connect``).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import warnings
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine.results import UnitResult
from repro.serve import protocol
from repro.serve.protocol import STATUS_UNAVAILABLE  # noqa: F401 - compat

DEFAULT_TIMEOUT = 60.0


class ServeError(ConnectionError):
    """The server connection failed or answered garbage.

    ``retryable`` marks transport-level failures a reconnect can heal
    (refused/reset connections, EOF or a torn HTTP body mid-response);
    protocol-level garbage (an unparseable response) is not retryable.
    """

    def __init__(self, message: str, retryable: bool = False):
        super().__init__(message)
        self.retryable = retryable


class Transport:
    """Retry policy and op helpers shared by every transport.

    Subclasses implement :meth:`connect`, :meth:`close`, and
    :meth:`_request_once` (one attempt: send a request, block for its
    response, raise :class:`ServeError` on failure).
    """

    def __init__(self, timeout: float = DEFAULT_TIMEOUT,
                 retries: int = 4,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 1.0,
                 backoff_jitter: float = 0.5,
                 backoff_seed: int = 0):
        self.timeout = timeout
        # request() absorbs this many reconnect-and-resend attempts
        # after the first failure before answering "unavailable".
        self.retries = max(0, retries)
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_factor = max(1.0, backoff_factor)
        self.backoff_max = max(0.0, backoff_max)
        self.backoff_jitter = max(0.0, backoff_jitter)
        self.backoff_seed = backoff_seed
        self._next_id = 0

    # -- connection lifecycle (subclass responsibility) ----------------

    def connect(self) -> "Transport":
        return self

    def close(self) -> None:
        pass

    def _reset_connection(self) -> None:
        """Drop the connection and all half-read state so the next
        attempt starts from a clean transport."""
        self.close()

    def __enter__(self) -> "Transport":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- retrying request loop -----------------------------------------

    def _request_once(self, op: str, fields: Dict[str, Any]) -> dict:
        raise NotImplementedError

    def _backoff_delay(self, attempt: int) -> float:
        """Deterministic seeded-jitter delay before retry ``attempt``
        (1-based) — the engine's retry-pacing formula."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_max,
                    self.backoff_base
                    * self.backoff_factor ** max(0, attempt - 1))
        rng = random.Random(f"{self.backoff_seed}:{attempt}")
        return delay * (1.0 + self.backoff_jitter * rng.random())

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and block for its response.

        Transport failures (daemon restarting: refused, reset, EOF,
        torn HTTP body) are retried with bounded seeded-jitter
        backoff; a spent budget answers ``status="unavailable"``
        instead of raising."""
        attempts = 0
        last: Optional[ServeError] = None
        while attempts <= self.retries:
            attempts += 1
            try:
                return self._request_once(op, fields)
            except ServeError as exc:
                if not exc.retryable:
                    raise
                last = exc
                self._reset_connection()
                if attempts <= self.retries:
                    delay = self._backoff_delay(attempts)
                    if delay > 0:
                        time.sleep(delay)
        return protocol.unavailable_reply(op, attempts, last)

    # -- ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def parse(self, path: Optional[str] = None,
              text: Optional[str] = None,
              filename: Optional[str] = None,
              deadline: Optional[float] = None,
              fresh: bool = False) -> UnitResult:
        """Parse via the daemon; returns a Result-protocol view whose
        ``.record`` carries the full response (``cache``, ``tier``,
        ``serve`` timings included)."""
        response = self.request("parse", path=path, text=text,
                                filename=filename, deadline=deadline,
                                fresh=fresh or None)
        # Shed/timeout responses carry no record body; keep the
        # UnitResult view total anyway.
        response.setdefault("unit", path or filename or "<input>")
        return UnitResult(response)

    def invalidate(self, path: str,
                   text: Optional[str] = None) -> dict:
        return self.request("invalidate", path=path, text=text)

    def stats(self) -> dict:
        response = self.request("stats")
        return response.get("stats") or {}

    def shutdown(self) -> dict:
        return self.request("shutdown")


class SocketTransport(Transport):
    """The newline-delimited JSON dialect over a Unix socket or TCP.

    The synchronous :meth:`request` sends one request and blocks for
    its response; :meth:`submit` / :meth:`drain` pipeline many
    requests at once (burst testing, editors batching a save-storm)
    and match responses by ``id``.
    """

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = 4,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 1.0,
                 backoff_jitter: float = 0.5,
                 backoff_seed: int = 0):
        if socket_path is None and port is None:
            raise ValueError("need socket_path or host/port")
        super().__init__(timeout=timeout, retries=retries,
                         backoff_base=backoff_base,
                         backoff_factor=backoff_factor,
                         backoff_max=backoff_max,
                         backoff_jitter=backoff_jitter,
                         backoff_seed=backoff_seed)
        self.socket_path = socket_path
        self.host = host or "127.0.0.1"
        self.port = port
        self._sock: Optional[socket.socket] = None
        self._recv_buffer = b""
        self._pending: Dict[Any, dict] = {}

    # -- connection ----------------------------------------------------

    def connect(self) -> "SocketTransport":
        if self._sock is not None:
            return self
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ServeError(f"cannot connect to parse server: {exc}",
                             retryable=True) from exc
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reset_connection(self) -> None:
        self.close()
        self._recv_buffer = b""
        self._pending.clear()

    # -- wire ----------------------------------------------------------

    def submit(self, op: str, **fields: Any) -> int:
        """Send one request without waiting; returns its ``id``."""
        self.connect()
        self._next_id += 1
        request = {"id": self._next_id, "op": op}
        request.update({key: value for key, value in fields.items()
                        if value is not None})
        payload = (json.dumps(request) + "\n").encode("utf-8")
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            raise ServeError(f"send failed: {exc}",
                             retryable=True) from exc
        return self._next_id

    def _read_response(self) -> dict:
        while b"\n" not in self._recv_buffer:
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                raise ServeError(f"receive failed: {exc}",
                                 retryable=True) from exc
            if not chunk:
                raise ServeError("server closed the connection",
                                 retryable=True)
            self._recv_buffer += chunk
        line, _sep, self._recv_buffer = \
            self._recv_buffer.partition(b"\n")
        try:
            return json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(f"bad response line: {exc}") from exc

    def wait_for(self, request_id: int) -> dict:
        """Response for ``request_id``; responses arriving out of order
        (sheds overtaking parses) are parked for their own waiters."""
        if request_id in self._pending:
            return self._pending.pop(request_id)
        while True:
            response = self._read_response()
            if response.get("id") == request_id:
                return response
            self._pending[response.get("id")] = response

    def _request_once(self, op: str, fields: Dict[str, Any]) -> dict:
        return self.wait_for(self.submit(op, **fields))

    def drain(self, request_ids: List[int]) -> List[dict]:
        """Collect responses for a pipelined burst, in request order."""
        return [self.wait_for(request_id) for request_id in request_ids]


class HttpTransport(Transport):
    """The HTTP/JSON frontend over a keep-alive HTTP/1.1 connection.

    Each op is sent on its :data:`~repro.serve.protocol.HTTP_ROUTES`
    route with a Content-Length-framed JSON body; the response body is
    the same envelope the socket dialect carries (the HTTP status code
    is derived from the envelope and adds nothing, so it is ignored
    here — the envelope's ``status`` is authoritative on both
    transports).
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = 4,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 1.0,
                 backoff_jitter: float = 0.5,
                 backoff_seed: int = 0):
        if port is None:
            raise ValueError("need host/port")
        super().__init__(timeout=timeout, retries=retries,
                         backoff_base=backoff_base,
                         backoff_factor=backoff_factor,
                         backoff_max=backoff_max,
                         backoff_jitter=backoff_jitter,
                         backoff_seed=backoff_seed)
        self.host = host
        self.port = port
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- connection ----------------------------------------------------

    def connect(self) -> "HttpTransport":
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    # -- wire ----------------------------------------------------------

    def _request_once(self, op: str, fields: Dict[str, Any]) -> dict:
        try:
            method, route = protocol.HTTP_ROUTES[op]
        except KeyError:
            raise ServeError(f"unknown op {op!r}") from None
        self.connect()
        self._next_id += 1
        request = {"id": self._next_id}
        request.update({key: value for key, value in fields.items()
                        if value is not None})
        body = json.dumps(request).encode("utf-8")
        try:
            self._conn.request(
                method, route, body=body,
                headers={"Content-Type": "application/json"})
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError) as exc:
            # Covers refused/reset connections and a torn body
            # (IncompleteRead is an HTTPException): reconnect, resend.
            raise ServeError(f"http request failed: {exc}",
                             retryable=True) from exc
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(f"bad response body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("response body must be a JSON object")
        return payload


class ServeClient(SocketTransport):
    """Deprecated socket client, kept as a behavior-identical alias of
    :class:`SocketTransport`.  New code should call
    ``repro.api.connect("unix:/path" | "tcp:host:port" |
    "http://host:port")`` for a :class:`RemoteSession`."""

    def __init__(self, *args: Any, **kwargs: Any):
        warnings.warn(
            "ServeClient is deprecated; use repro.api.connect("
            "'unix:/path' | 'tcp:host:port' | 'http://host:port') "
            "to open a RemoteSession",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)


# -- endpoint URLs -----------------------------------------------------


def parse_endpoint(url: str) -> Tuple[str, ...]:
    """Parse an endpoint URL into ``("unix", path)``,
    ``("tcp", host, port)``, or ``("http", host, port)``.

    Accepted forms: ``unix:/path`` (also ``unix:///path`` and bare
    filesystem paths), ``tcp:host:port`` (also ``tcp://host:port``),
    and ``http://host[:port]``.
    """
    if not isinstance(url, str) or not url:
        raise ValueError("endpoint URL must be a non-empty string")
    if url.startswith("unix:"):
        path = url[len("unix:"):]
        if path.startswith("//"):
            # unix://<path>: no authority is meaningful, keep the path.
            path = path[2:]
        if not path:
            raise ValueError(f"no socket path in {url!r}")
        return ("unix", path)
    if url.startswith("tcp:"):
        rest = url[len("tcp:"):]
        if rest.startswith("//"):
            rest = rest[2:]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not port_text.isdigit():
            raise ValueError(f"tcp endpoint needs host:port, "
                             f"got {url!r}")
        return ("tcp", host or "127.0.0.1", int(port_text))
    if url.startswith("http://"):
        from urllib.parse import urlsplit
        parts = urlsplit(url)
        if not parts.hostname:
            raise ValueError(f"no host in {url!r}")
        # `or 80` would turn an explicit port 0 (server-side "pick a
        # free port") into 80; only default a *missing* port.
        port = parts.port if parts.port is not None else 80
        return ("http", parts.hostname, port)
    if "://" in url or (":" in url.split("/", 1)[0]
                        and not url.startswith("/")):
        scheme = url.split(":", 1)[0]
        raise ValueError(
            f"unsupported endpoint scheme {scheme!r} "
            f"(use unix:, tcp:, or http://)")
    # A bare filesystem path means the Unix socket at that path.
    return ("unix", url)


def make_transport(url: str, **options: Any) -> Transport:
    """Build the right :class:`Transport` for an endpoint URL.

    ``options`` (``timeout``, ``retries``, ``backoff_*``) pass through
    to the transport constructor.
    """
    endpoint = parse_endpoint(url)
    if endpoint[0] == "unix":
        return SocketTransport(socket_path=endpoint[1], **options)
    if endpoint[0] == "tcp":
        return SocketTransport(host=endpoint[1], port=endpoint[2],
                               **options)
    return HttpTransport(host=endpoint[1], port=endpoint[2], **options)


# -- the session facade ------------------------------------------------


class RemoteSession:
    """One remote parse daemon behind the Session surface.

    Mirrors ``repro.api.Session``: :meth:`parse` returns an object
    satisfying the structural Result protocol, :meth:`parse_file`
    parses by path.  The transport is chosen by :func:`connect`'s
    endpoint URL; everything above it is identical across transports.
    """

    def __init__(self, url: Optional[str] = None,
                 transport: Optional[Transport] = None,
                 **options: Any):
        if transport is None:
            if url is None:
                raise ValueError("need an endpoint URL or a transport")
            transport = make_transport(url, **options)
        self.url = url
        self.transport = transport

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "RemoteSession":
        self.transport.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"RemoteSession(url={self.url!r}, "
                f"transport={type(self.transport).__name__})")

    # -- ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self.transport.ping()

    def parse(self, path: Optional[str] = None,
              text: Optional[str] = None,
              filename: Optional[str] = None,
              deadline: Optional[float] = None,
              fresh: bool = False) -> UnitResult:
        """Parse by server-side ``path``, by ``text`` buffer, or both
        (an explicit buffer for a known path is an overlay edit)."""
        return self.transport.parse(path=path, text=text,
                                    filename=filename,
                                    deadline=deadline, fresh=fresh)

    def parse_file(self, path: Union[str, Any],
                   deadline: Optional[float] = None,
                   fresh: bool = False) -> UnitResult:
        """Parse the unit at ``path`` (the local ``Session.parse_file``
        shape)."""
        return self.parse(path=str(path), deadline=deadline,
                          fresh=fresh)

    def invalidate(self, path: str,
                   text: Optional[str] = None) -> dict:
        return self.transport.invalidate(path, text=text)

    def stats(self) -> dict:
        return self.transport.stats()

    def shutdown(self) -> dict:
        return self.transport.shutdown()


def connect(url: str, **options: Any) -> RemoteSession:
    """Open a :class:`RemoteSession` to a running parse daemon.

    ``url`` is ``unix:/path`` (or a bare socket path),
    ``tcp:host:port``, or ``http://host:port``; ``options``
    (``timeout``, ``retries``, ``backoff_*``) tune the transport.
    """
    return RemoteSession(url=url, **options)


__all__ = [
    "DEFAULT_TIMEOUT", "HttpTransport", "RemoteSession", "ServeClient",
    "ServeError", "SocketTransport", "STATUS_UNAVAILABLE", "Transport",
    "connect", "make_transport", "parse_endpoint",
]
