"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables/figures on the
synthetic kernel corpus and prints the same rows/series the paper
reports.  Numbers are not expected to match the paper's testbed, but
the shape — who wins, by what factor, where curves knee — should hold.
"""

import sys

import pytest

from repro.corpus import KernelSpec, generate_kernel
from repro.superc import SuperC

# Benchmark-scale kernel: big enough for stable percentiles, small
# enough for a pure-Python pipeline.
BENCH_SPEC = KernelSpec(seed=2012, subsystems=4,
                        drivers_per_subsystem=3, figure6_entries=10)

# Smaller corpus for the per-optimization-level sweep (7 full parses
# of every unit).
SWEEP_SPEC = KernelSpec(seed=2012, subsystems=2,
                        drivers_per_subsystem=2, figure6_entries=8)


@pytest.fixture(scope="session")
def kernel_corpus():
    return generate_kernel(BENCH_SPEC)


@pytest.fixture(scope="session")
def sweep_corpus():
    return generate_kernel(SWEEP_SPEC)


@pytest.fixture(scope="session")
def superc(kernel_corpus):
    return SuperC(kernel_corpus.filesystem(),
                  include_paths=kernel_corpus.include_paths)


# Reports are exchanged through a scratch file: pytest loads this
# conftest under its own module name while benches import
# `benchmarks.conftest`, so module-level state would be duplicated.
import os

_REPORT_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            ".bench_reports.txt")


def emit(lines):
    """Record a report; it is printed in the terminal summary (outside
    pytest's output capture) so it lands in the benchmark log."""
    text = "\n".join(lines)
    with open(_REPORT_FILE, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(text, file=sys.stderr)  # visible with -s too


def pytest_sessionstart(session):
    try:
        os.remove(_REPORT_FILE)
    except OSError:
        pass


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    try:
        with open(_REPORT_FILE, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return
    for line in text.splitlines():
        terminalreporter.write_line(line)
