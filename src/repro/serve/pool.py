"""Supervised pre-forked worker pool for the parse daemon.

PR 6's daemon ran every parse on one thread inside one process, so a
segfault-class failure or a runaway parse killed the whole service —
and per-request deadlines leaned on SIGALRM, which only works on the
main thread and therefore serialized the daemon.  This module moves
each parse into a supervised child process:

* **Pre-forked workers.**  Workers are forked from the warm parent
  *after* the LALR tables and warm :class:`~repro.api.Session` exist,
  so every child starts hot (copy-on-write tables, no rebuild).
  Request/response framing is length-prefixed JSON over a pipe pair.
* **Supervisor-enforced deadlines.**  The parent waits on the response
  pipe with ``select`` and a timeout derived from the request's
  :class:`~repro.serve.admission.Deadline`; on expiry the worker is
  SIGKILLed and the request answered ``status=timeout`` — the engine's
  ``attempt_deadline`` semantics without SIGALRM's main-thread
  restriction, so any number of dispatcher threads can serve parses
  concurrently.
* **Supervision.**  A heartbeat thread pings idle workers, recycles
  them after ``max_requests`` served or past an RSS ceiling, and
  replaces the dead.  A crashed worker is restarted under
  deterministic-seeded exponential backoff; a request in flight on a
  crashed worker is retried once on a fresh worker before being
  answered ``status=crashed``.
* **Crash-loop circuit breaker.**  Worker deaths feed the engine's
  :class:`~repro.engine.scheduler.CrashLoopBreaker` (PR 3): enough
  consecutive deaths trip it and the pool degrades to supervised
  single-inline-worker mode — parses run serialized on the parent's
  warm session — instead of fork-looping or dying.  After a cooldown
  the breaker half-opens and the pool re-probes forking.

Observability: ``serve.worker.{spawn,crash,restart,recycle}``,
``serve.breaker.trip``, and ``serve.pool.inline`` counters, plus a
``stats()`` block surfaced by the daemon's ``stats`` op.

Chaos: the supervisor fires the ``pool.request`` hook on every
dispatched wire request; an armed ``worker-crash``/``worker-hang``
fault tags the request and the child acts it out (``os._exit`` /
oversleep), exercising exactly the crash and deadline paths above.
"""

from __future__ import annotations

import collections
import json
import os
import random
import select
import signal
import struct
import threading
import time
from typing import Any, Deque, Dict, FrozenSet, List, Optional, Tuple

from repro import chaos
from repro.engine.results import (STATUS_CRASHED, STATUS_ERROR,
                                  STATUS_TIMEOUT, error_record)
from repro.engine.scheduler import CrashLoopBreaker
from repro.obs.tracer import NULL_TRACER
from repro.serve import protocol
from repro.serve.admission import Deadline

_HEADER = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024

# Exit code a worker uses for a chaos-injected crash (distinguishable
# from real faults in waitpid status, same supervision path).
CHAOS_EXIT = 66


# -- pipe framing ------------------------------------------------------


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(fd: int, message: dict) -> None:
    payload = json.dumps(message).encode("utf-8")
    _write_all(fd, _HEADER.pack(len(payload)) + payload)


def _recv_frame(fd: int) -> Optional[dict]:
    """One framed message, or None on EOF / garbage (dead peer)."""
    header = _read_exact(fd, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        return None
    payload = _read_exact(fd, length)
    if payload is None:
        return None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return message if isinstance(message, dict) else None


def _rss_kb() -> int:
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return 0


# -- configuration -----------------------------------------------------


class PoolConfig:
    """Tunables for the worker pool and its supervisor."""

    def __init__(self,
                 size: int = 2,
                 max_requests: int = 200,
                 max_rss_mb: int = 0,
                 heartbeat_seconds: float = 1.0,
                 heartbeat_timeout: float = 2.0,
                 checkout_timeout: float = 2.0,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 2.0,
                 backoff_jitter: float = 0.5,
                 backoff_seed: int = 0,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0):
        self.size = max(1, size)
        # Recycle after this many served requests (0 disables).
        self.max_requests = max(0, max_requests)
        # Recycle when a worker's max-RSS passes this (0 disables).
        self.max_rss_mb = max(0, max_rss_mb)
        self.heartbeat_seconds = max(0.05, heartbeat_seconds)
        self.heartbeat_timeout = max(0.05, heartbeat_timeout)
        # How long a dispatcher waits for an idle worker before
        # falling back to an inline parse.
        self.checkout_timeout = max(0.05, checkout_timeout)
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_factor = max(1.0, backoff_factor)
        self.backoff_max = max(0.0, backoff_max)
        self.backoff_jitter = max(0.0, backoff_jitter)
        self.backoff_seed = backoff_seed
        self.breaker_threshold = max(0, breaker_threshold)
        self.breaker_cooldown = max(0.0, breaker_cooldown)


class Worker:
    """Parent-side handle on one forked worker process."""

    __slots__ = ("pid", "rfd", "wfd", "served", "rss_kb", "alive")

    def __init__(self, pid: int, rfd: int, wfd: int):
        self.pid = pid
        self.rfd = rfd    # parent reads responses here
        self.wfd = wfd    # parent writes requests here
        self.served = 0
        self.rss_kb = 0
        self.alive = True


# -- the worker child --------------------------------------------------


def _child_close_fds(keep: Tuple[int, ...]) -> None:
    """Close every inherited descriptor except ``keep`` and stdio —
    most importantly the listener and client sockets, so a wedged
    worker can't hold connections open past the parent."""
    keep_set = set(keep) | {0, 1, 2}
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:
        fds = range(3, 256)
    for fd in fds:
        if fd in keep_set:
            continue
        try:
            os.close(fd)
        except OSError:
            pass


def _child_main(state: Any, rfd: int, wfd: int) -> None:
    """The worker loop: framed requests in, framed records out.

    Runs with the parent's warm state (tables, session, file store)
    inherited copy-on-write; ``reset_after_fork`` replaces inherited
    locks and detaches cache/journal writers (publishing is the
    parent's job)."""
    _child_close_fds((rfd, wfd))
    state.reset_after_fork()
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        frame = _recv_frame(rfd)
        if frame is None:
            return
        request = protocol.decode_worker(frame)
        if request is None or isinstance(request, protocol.WorkerExit):
            return
        if isinstance(request, protocol.WorkerPing):
            _send_frame(wfd, protocol.pong(_rss_kb()))
            continue
        if request.chaos == "crash":
            os._exit(CHAOS_EXIT)
        if request.chaos == "hang":
            time.sleep(request.chaos_seconds)
        unit = request.unit
        for path, overlay in request.files.items():
            state.files.put(path, overlay)
        try:
            record = state._parse_inline(unit, request.text)
        except Exception as exc:  # confinement: report, don't die
            record = error_record(unit, STATUS_ERROR, repr(exc))
        record["rss_kb"] = _rss_kb()
        try:
            _send_frame(wfd, record)
        except (OSError, TypeError, ValueError):
            return


# -- the pool ----------------------------------------------------------


class WorkerPool:
    """Pre-forked parse workers under one supervisor.

    ``execute(unit, text, closure_files, deadline)`` is the single
    entry point — thread-safe, callable from any number of dispatcher
    threads — and always returns a record: a parse result, a
    ``timeout`` record (worker killed at the deadline), a ``crashed``
    record (died twice on the same request), or an inline-parse result
    when the pool is degraded or exhausted.
    """

    def __init__(self, state: Any, config: Optional[PoolConfig] = None,
                 tracer: Any = None):
        self.state = state
        self.config = config if config is not None else PoolConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.breaker = CrashLoopBreaker(self.config.breaker_threshold)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._idle: Deque[Worker] = collections.deque()
        self._workers: List[Worker] = []
        self._inline_lock = threading.Lock()
        self._closed = False
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._tripped_at = 0.0
        self._restart_streak = 0
        self.spawns = 0
        self.crashes = 0
        self.restarts = 0
        self.recycles = 0
        self.timeouts = 0
        self.inline_parses = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerPool":
        for _ in range(self.config.size):
            worker = self._spawn()
            if worker is None:
                break
            with self._cond:
                self._workers.append(worker)
                self._idle.append(worker)
                self._cond.notify()
        self._supervisor = threading.Thread(target=self._supervise,
                                            name="serve-pool-supervisor",
                                            daemon=True)
        self._supervisor.start()
        return self

    def close(self) -> None:
        self._stop.set()
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._workers = []
            self._idle.clear()
            self._cond.notify_all()
        for worker in workers:
            self._shutdown_worker(worker)
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)

    def _shutdown_worker(self, worker: Worker) -> None:
        try:
            _send_frame(worker.wfd, protocol.WorkerExit().to_wire())
        except OSError:
            pass
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            pid, _status = os.waitpid(worker.pid, os.WNOHANG)
            if pid == worker.pid:
                break
            time.sleep(0.01)
        else:
            try:
                os.kill(worker.pid, signal.SIGKILL)
                os.waitpid(worker.pid, 0)
            except OSError:
                pass
        self._close_worker_fds(worker)

    @staticmethod
    def _close_worker_fds(worker: Worker) -> None:
        worker.alive = False
        for fd in (worker.rfd, worker.wfd):
            try:
                os.close(fd)
            except OSError:
                pass

    # -- spawning / supervision ----------------------------------------

    def _spawn(self) -> Optional[Worker]:
        """Fork one warm worker; None if the fork itself fails."""
        req_r, req_w = os.pipe()
        res_r, res_w = os.pipe()
        try:
            pid = os.fork()
        except OSError:
            for fd in (req_r, req_w, res_r, res_w):
                os.close(fd)
            return None
        if pid == 0:
            try:
                os.close(req_w)
                os.close(res_r)
                _child_main(self.state, req_r, res_w)
            finally:
                os._exit(0)
        os.close(req_r)
        os.close(res_w)
        self.spawns += 1
        if self.tracer.enabled:
            self.tracer.count("serve.worker.spawn")
        return Worker(pid, rfd=res_r, wfd=req_w)

    def _backoff_delay(self, streak: int) -> float:
        """Deterministic seeded backoff before restart ``streak``
        (1-based) — the engine's retry-pacing formula."""
        config = self.config
        if config.backoff_base <= 0:
            return 0.0
        delay = min(config.backoff_max,
                    config.backoff_base
                    * config.backoff_factor ** max(0, streak - 1))
        rng = random.Random(f"{config.backoff_seed}:{streak}")
        return delay * (1.0 + config.backoff_jitter * rng.random())

    def _reap(self, worker: Worker) -> None:
        self._close_worker_fds(worker)
        try:
            os.waitpid(worker.pid, os.WNOHANG)
        except OSError:
            pass
        with self._cond:
            if worker in self._workers:
                self._workers.remove(worker)
            try:
                self._idle.remove(worker)
            except ValueError:
                pass

    def _restart_one(self) -> Optional[Worker]:
        """Backoff + fork one replacement and make it available."""
        self._restart_streak += 1
        delay = self._backoff_delay(self._restart_streak)
        if delay > 0:
            time.sleep(delay)
        worker = self._spawn()
        if worker is None:
            return None
        self.restarts += 1
        if self.tracer.enabled:
            self.tracer.count("serve.worker.restart")
        with self._cond:
            if self._closed:
                pass
            else:
                self._workers.append(worker)
                self._idle.append(worker)
                self._cond.notify()
                return worker
        self._shutdown_worker(worker)
        return None

    def _on_worker_death(self, worker: Worker) -> None:
        """Bookkeeping for a worker that died serving a request."""
        self.crashes += 1
        if self.tracer.enabled:
            self.tracer.count("serve.worker.crash")
        self._reap(worker)
        if self.breaker.failure():
            # This death tripped the breaker: degrade to inline mode
            # instead of fork-looping.
            self._tripped_at = time.monotonic()
            if self.tracer.enabled:
                self.tracer.count("serve.breaker.trip")
        if not self.breaker.tripped and not self._closed:
            self._restart_one()

    def _supervise(self) -> None:
        """Heartbeat loop: ping the idle, recycle the worn, replace
        the missing, and half-open a cooled-down breaker."""
        while not self._stop.wait(self.config.heartbeat_seconds):
            if self.breaker.tripped:
                if self.config.breaker_cooldown > 0 and \
                        time.monotonic() - self._tripped_at \
                        >= self.config.breaker_cooldown:
                    # Half-open: forget the streak and re-probe forking.
                    self.breaker.reset()
                else:
                    continue
            with self._cond:
                idle = [self._idle.popleft()
                        for _ in range(len(self._idle))]
            for worker in idle:
                if self._stop.is_set():
                    with self._cond:
                        self._idle.append(worker)
                        self._cond.notify()
                    continue
                if not self._healthy(worker):
                    self._on_worker_death(worker)
                elif self._worn(worker):
                    self.recycles += 1
                    if self.tracer.enabled:
                        self.tracer.count("serve.worker.recycle")
                    self._reap(worker)
                    try:
                        os.kill(worker.pid, signal.SIGKILL)
                        os.waitpid(worker.pid, 0)
                    except OSError:
                        pass
                    self._restart_streak = 0
                    self._restart_one()
                else:
                    with self._cond:
                        self._idle.append(worker)
                        self._cond.notify()
            # Keep the population at size even if a spawn failed.
            with self._cond:
                missing = (0 if self._closed else
                           self.config.size - len(self._workers))
            for _ in range(max(0, missing)):
                if self._stop.is_set() or self.breaker.tripped:
                    break
                self._restart_one()

    def _healthy(self, worker: Worker) -> bool:
        """Ping an idle worker; False means dead/wedged."""
        try:
            _send_frame(worker.wfd, protocol.WorkerPing().to_wire())
        except OSError:
            return False
        ready, _, _ = select.select([worker.rfd], [], [],
                                    self.config.heartbeat_timeout)
        if not ready:
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except OSError:
                pass
            return False
        pong = _recv_frame(worker.rfd)
        if pong is None or not pong.get("ok"):
            return False
        worker.rss_kb = int(pong.get("rss_kb") or 0)
        return True

    def _worn(self, worker: Worker) -> bool:
        config = self.config
        if config.max_requests and worker.served >= config.max_requests:
            return True
        if config.max_rss_mb and worker.rss_kb >= config.max_rss_mb * 1024:
            return True
        return False

    # -- request path --------------------------------------------------

    def _checkout(self, deadline: Optional[Deadline]) -> Optional[Worker]:
        budget = self.config.checkout_timeout
        if deadline is not None and deadline.enabled:
            budget = min(budget, max(0.0, deadline.remaining()))
        end = time.monotonic() + budget
        with self._cond:
            while True:
                if self._closed or self.breaker.tripped:
                    return None
                if self._idle:
                    return self._idle.popleft()
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(timeout=remaining)

    def _checkin(self, worker: Worker) -> None:
        worker.served += 1
        with self._cond:
            if self._closed or worker not in self._workers:
                pass
            else:
                self._idle.append(worker)
                self._cond.notify()
                return
        self._shutdown_worker(worker)

    def execute(self, unit: str, text: str,
                closure_files: FrozenSet[str],
                deadline: Optional[Deadline] = None) -> dict:
        """Run one parse out of process; always returns a record."""
        files: Dict[str, str] = {}
        for path in closure_files:
            overlay = self.state.files.read(path)
            if overlay is not None:
                files[path] = overlay
        last_crash = "worker died"
        for attempt in (1, 2):
            if self.breaker.tripped or self._closed:
                break
            wire = protocol.WorkerParse(unit, text, files).to_wire()
            if chaos.ACTIVE is not None:
                # Fired per dispatch (not per request), so an armed
                # worker fault hits attempt 1 and the retry runs clean.
                chaos.fire("pool.request", request=wire)
            worker = self._checkout(deadline)
            if worker is None:
                break
            outcome, record = self._dispatch(worker, wire, unit,
                                             deadline)
            if outcome == "ok":
                self.breaker.success()
                self._restart_streak = 0
                self._checkin(worker)
                return record
            if outcome == "timeout":
                # The worker was killed at the deadline; the budget is
                # spent, so there is nothing to retry against.
                self.timeouts += 1
                self._on_worker_death(worker)
                return record
            # outcome == "crash"
            last_crash = (f"worker pid {worker.pid} died serving "
                          f"{unit} (attempt {attempt})")
            self._on_worker_death(worker)
        if self.breaker.tripped or self._closed \
                or not self._has_workers():
            return self._run_inline(unit, text)
        return error_record(unit, STATUS_CRASHED, last_crash, attempt=2)

    def _has_workers(self) -> bool:
        with self._cond:
            return bool(self._workers)

    def _dispatch(self, worker: Worker, wire: dict, unit: str,
                  deadline: Optional[Deadline]) \
            -> Tuple[str, Optional[dict]]:
        """(outcome, record): outcome is ok / timeout / crash."""
        try:
            _send_frame(worker.wfd, wire)
        except OSError:
            return "crash", None
        timeout = None
        if deadline is not None and deadline.enabled:
            timeout = max(0.0, deadline.remaining())
        ready, _, _ = select.select([worker.rfd], [], [], timeout)
        if not ready:
            # Deadline expired mid-parse: the supervisor enforces it by
            # killing the worker — no SIGALRM, no main-thread rule.
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except OSError:
                pass
            seconds = deadline.seconds if deadline is not None else 0.0
            return "timeout", error_record(
                unit, STATUS_TIMEOUT,
                f"deadline of {seconds:.3g}s exceeded in worker "
                f"pid {worker.pid} (killed by supervisor)")
        record = _recv_frame(worker.rfd)
        if record is None:
            return "crash", None
        worker.rss_kb = int(record.pop("rss_kb", 0) or 0)
        return "ok", record

    def _run_inline(self, unit: str, text: str) -> dict:
        """Degraded mode: one parse at a time on the parent's warm
        session (the PR 6 behavior, kept as the floor the pool can
        never fall below)."""
        self.inline_parses += 1
        if self.tracer.enabled:
            self.tracer.count("serve.pool.inline")
        with self._inline_lock:
            try:
                return self.state._parse_inline(unit, text)
            except Exception as exc:
                return error_record(unit, STATUS_ERROR, repr(exc))

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        with self._cond:
            alive = len(self._workers)
            idle = len(self._idle)
        return {
            "size": self.config.size,
            "alive": alive,
            "idle": idle,
            "spawns": self.spawns,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "recycles": self.recycles,
            "timeouts": self.timeouts,
            "inline_parses": self.inline_parses,
            "breaker": {
                "tripped": self.breaker.tripped,
                "trips": self.breaker.trips,
                "consecutive": self.breaker.consecutive,
                "threshold": self.breaker.threshold,
            },
        }
