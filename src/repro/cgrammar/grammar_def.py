"""The C grammar (C99 plus common GNU extensions).

SuperC reuses Roskind's C grammar with Bison (§5); this definition
follows the same lineage (the classic ANSI C LALR(1) grammar extended
with typedef names as a distinct terminal, GNU ``__attribute__``,
``asm``, ``typeof``, statement expressions, and variadic parameters).

AST construction uses the §5.1 annotations: expression precedence
levels are ``passthrough`` (C has 17 levels; passthrough keeps trees
shallow), left-recursive repetitions are ``list``, and punctuation-only
helpers are ``layout``.  ``complete`` marks the syntactic units at
which FMLR subparsers may merge with static choice nodes: declarations,
definitions, statements, and expressions, plus members of commonly
configured lists (parameters, struct members, enumerators, and
initializer-list members) to avoid Figure 6's exponential blow-up.
"""

from __future__ import annotations

from repro.parser.grammar import Build, Grammar

# Keywords become their own terminals; the classifier maps identifier
# tokens whose text is in this set.
C_KEYWORDS = frozenset({
    "auto", "break", "case", "char", "const", "continue", "default",
    "do", "double", "else", "enum", "extern", "float", "for", "goto",
    "if", "inline", "int", "long", "register", "restrict", "return",
    "short", "signed", "sizeof", "static", "struct", "switch",
    "typedef", "union", "unsigned", "void", "volatile", "while",
    "_Bool", "_Complex", "_Imaginary",
    # GNU spellings, normalized by the classifier:
    "__attribute__", "asm", "typeof", "__builtin_va_arg",
    "__builtin_offsetof", "__extension__", "__alignof__", "__label__",
    "__thread",
})

# GNU alternate keyword spellings -> canonical terminal.
GNU_ALIASES = {
    "__const": "const", "__const__": "const",
    "__volatile": "volatile", "__volatile__": "volatile",
    "__restrict": "restrict", "__restrict__": "restrict",
    "__inline": "inline", "__inline__": "inline",
    "__signed": "signed", "__signed__": "signed",
    "__asm": "asm", "__asm__": "asm",
    "__typeof": "typeof", "__typeof__": "typeof",
    "__attribute": "__attribute__",
    "__alignof": "__alignof__",
}

P = Build.PASSTHROUGH
L = Build.LIST
N = Build.NODE
Y = Build.LAYOUT


def build_c_grammar() -> Grammar:
    """Construct (but do not generate tables for) the C grammar."""
    g = Grammar("TranslationUnit")

    # -- translation unit --------------------------------------------------
    g.rule("TranslationUnit", ["ExternalDeclarationList"], build=P)
    g.rule("TranslationUnit", [], build=N)
    g.rule("ExternalDeclarationList",
           ["ExternalDeclarationList", "ExternalDeclaration"], build=L)
    g.rule("ExternalDeclarationList", ["ExternalDeclaration"], build=L)
    g.rule("ExternalDeclaration", ["FunctionDefinition"], build=P)
    g.rule("ExternalDeclaration", ["Declaration"], build=P)
    g.rule("ExternalDeclaration", [";"], node_name="EmptyDeclaration")
    g.rule("ExternalDeclaration", ["AsmDefinition"], build=P)

    # -- function definitions ----------------------------------------------
    g.rule("FunctionDefinition",
           ["DeclarationSpecifiers", "Declarator", "CompoundStatement"],
           node_name="FunctionDefinition")
    # GNU: old-style `main()` without specifiers is still common.
    g.rule("FunctionDefinition", ["Declarator", "CompoundStatement"],
           node_name="FunctionDefinition")

    # -- declarations --------------------------------------------------------
    g.rule("Declaration",
           ["DeclarationSpecifiers", "InitDeclaratorList", ";"],
           node_name="Declaration")
    g.rule("Declaration", ["DeclarationSpecifiers", ";"],
           node_name="Declaration")

    g.rule("DeclarationSpecifiers",
           ["DeclarationSpecifiers", "DeclarationSpecifier"], build=L)
    g.rule("DeclarationSpecifiers", ["DeclarationSpecifier"], build=L)
    g.rule("DeclarationSpecifier", ["StorageClassSpecifier"], build=P)
    g.rule("DeclarationSpecifier", ["TypeSpecifier"], build=P)
    g.rule("DeclarationSpecifier", ["TypeQualifier"], build=P)
    g.rule("DeclarationSpecifier", ["FunctionSpecifier"], build=P)
    g.rule("DeclarationSpecifier", ["AttributeSpecifier"], build=P)

    for kw in ("typedef", "extern", "static", "auto", "register",
               "__thread"):
        g.rule("StorageClassSpecifier", [kw], build=P)
    for kw in ("void", "char", "short", "int", "long", "float",
               "double", "signed", "unsigned", "_Bool", "_Complex",
               "_Imaginary"):
        g.rule("TypeSpecifier", [kw], build=P)
    g.rule("TypeSpecifier", ["StructOrUnionSpecifier"], build=P)
    g.rule("TypeSpecifier", ["EnumSpecifier"], build=P)
    g.rule("TypeSpecifier", ["TYPEDEF_NAME"], build=P)
    g.rule("TypeSpecifier", ["typeof", "(", "Expression", ")"],
           node_name="Typeof")
    g.rule("TypeSpecifier", ["typeof", "(", "TypeName", ")"],
           node_name="TypeofType")
    for kw in ("const", "volatile", "restrict"):
        g.rule("TypeQualifier", [kw], build=P)
    g.rule("FunctionSpecifier", ["inline"], build=P)
    g.rule("FunctionSpecifier", ["__extension__"], build=P)

    g.rule("InitDeclaratorList",
           ["InitDeclaratorList", "Comma", "InitDeclarator"], build=L)
    g.rule("InitDeclaratorList", ["InitDeclarator"], build=L)
    g.rule("InitDeclarator", ["Declarator"], build=P)
    g.rule("InitDeclarator", ["Declarator", "=", "Initializer"],
           node_name="InitializedDeclarator")
    g.rule("InitDeclarator", ["Declarator", "AsmLabel"],
           node_name="AsmDeclarator")
    # GNU: attributes may trail the declarator (with or without an
    # initializer): `int x __attribute__((aligned(16))) = 1;`
    g.rule("InitDeclarator", ["Declarator", "AttributeSpecifiers"],
           node_name="AsmDeclarator")
    g.rule("InitDeclarator",
           ["Declarator", "AttributeSpecifiers", "=", "Initializer"],
           node_name="InitializedDeclarator")
    g.rule("AttributeSpecifiers",
           ["AttributeSpecifiers", "AttributeSpecifier"], build=L)
    g.rule("AttributeSpecifiers", ["AttributeSpecifier"], build=L)
    g.rule("AsmLabel", ["asm", "(", "STRING", ")"], node_name="AsmLabel")

    # -- struct / union / enum ------------------------------------------------
    g.rule("StructOrUnionSpecifier",
           ["StructOrUnion", "AttributeList", "TagName",
            "{", "StructDeclarationList", "}"],
           node_name="StructSpecifier")
    g.rule("StructOrUnionSpecifier",
           ["StructOrUnion", "AttributeList",
            "{", "StructDeclarationList", "}"],
           node_name="StructSpecifier")
    g.rule("StructOrUnionSpecifier",
           ["StructOrUnion", "AttributeList", "{", "}"],
           node_name="StructSpecifier")
    g.rule("StructOrUnionSpecifier",
           ["StructOrUnion", "AttributeList", "TagName"],
           node_name="StructReference")
    g.rule("StructOrUnion", ["struct"], build=P)
    g.rule("StructOrUnion", ["union"], build=P)
    # Struct tags live in a separate namespace: a typedef'd name may
    # also be a tag.
    g.rule("TagName", ["IDENTIFIER"], build=P)
    g.rule("TagName", ["TYPEDEF_NAME"], build=P)

    g.rule("StructDeclarationList",
           ["StructDeclarationList", "StructDeclaration"], build=L)
    g.rule("StructDeclarationList", ["StructDeclaration"], build=L)
    g.rule("StructDeclaration",
           ["SpecifierQualifierList", "StructDeclaratorList", ";"],
           node_name="StructDeclaration")
    g.rule("StructDeclaration", ["SpecifierQualifierList", ";"],
           node_name="StructDeclaration")  # anonymous member (GNU/C11)
    g.rule("SpecifierQualifierList",
           ["SpecifierQualifierList", "SpecifierQualifier"], build=L)
    g.rule("SpecifierQualifierList", ["SpecifierQualifier"], build=L)
    g.rule("SpecifierQualifier", ["TypeSpecifier"], build=P)
    g.rule("SpecifierQualifier", ["TypeQualifier"], build=P)
    g.rule("SpecifierQualifier", ["AttributeSpecifier"], build=P)

    g.rule("StructDeclaratorList",
           ["StructDeclaratorList", "Comma", "StructDeclarator"],
           build=L)
    g.rule("StructDeclaratorList", ["StructDeclarator"], build=L)
    g.rule("StructDeclarator", ["Declarator"], build=P)
    g.rule("StructDeclarator", ["Declarator", "AttributeSpecifiers"],
           node_name="AsmDeclarator")
    g.rule("StructDeclarator", ["Declarator", ":", "ConditionalExpression"],
           node_name="BitField")
    g.rule("StructDeclarator", [":", "ConditionalExpression"],
           node_name="BitField")

    g.rule("EnumSpecifier",
           ["enum", "TagName", "{", "EnumeratorList", "CommaOpt", "}"],
           node_name="EnumSpecifier")
    g.rule("EnumSpecifier",
           ["enum", "{", "EnumeratorList", "CommaOpt", "}"],
           node_name="EnumSpecifier")
    g.rule("EnumSpecifier", ["enum", "TagName"],
           node_name="EnumReference")
    g.rule("EnumeratorList",
           ["EnumeratorList", "Comma", "Enumerator"], build=L)
    g.rule("EnumeratorList", ["Enumerator"], build=L)
    g.rule("Enumerator", ["IDENTIFIER"], node_name="Enumerator")
    g.rule("Enumerator", ["IDENTIFIER", "=", "ConditionalExpression"],
           node_name="Enumerator")
    g.rule("CommaOpt", [","], build=Y)
    g.rule("CommaOpt", [], build=Y)

    # -- declarators -------------------------------------------------------------
    g.rule("Declarator", ["Pointer", "DirectDeclarator"],
           node_name="PointerDeclarator")
    g.rule("Declarator", ["DirectDeclarator"], build=P)
    g.rule("Pointer", ["*"], node_name="Pointer")
    g.rule("Pointer", ["*", "TypeQualifierList"], node_name="Pointer")
    g.rule("Pointer", ["*", "Pointer"], node_name="Pointer")
    g.rule("Pointer", ["*", "TypeQualifierList", "Pointer"],
           node_name="Pointer")
    g.rule("TypeQualifierList",
           ["TypeQualifierList", "TypeQualifier"], build=L)
    g.rule("TypeQualifierList", ["TypeQualifier"], build=L)

    g.rule("DirectDeclarator", ["IDENTIFIER"], build=P)
    g.rule("DirectDeclarator", ["(", "Declarator", ")"], build=P)
    g.rule("DirectDeclarator",
           ["(", "AttributeSpecifier", "Declarator", ")"],
           node_name="AttributedDeclarator")
    g.rule("DirectDeclarator",
           ["DirectDeclarator", "[", "ConditionalExpression", "]"],
           node_name="ArrayDeclarator")
    g.rule("DirectDeclarator", ["DirectDeclarator", "[", "]"],
           node_name="ArrayDeclarator")
    g.rule("DirectDeclarator",
           ["DirectDeclarator", "(", "ParameterTypeList", ")"],
           node_name="FunctionDeclarator")
    g.rule("DirectDeclarator",
           ["DirectDeclarator", "(", "IdentifierList", ")"],
           node_name="FunctionDeclarator")
    g.rule("DirectDeclarator", ["DirectDeclarator", "(", ")"],
           node_name="FunctionDeclarator")

    g.rule("ParameterTypeList", ["ParameterList"], build=P)
    g.rule("ParameterTypeList", ["ParameterList", "Comma", "..."],
           node_name="VariadicParameters")
    g.rule("ParameterList",
           ["ParameterList", "Comma", "ParameterDeclaration"], build=L)
    g.rule("ParameterList", ["ParameterDeclaration"], build=L)
    g.rule("ParameterDeclaration",
           ["DeclarationSpecifiers", "Declarator"],
           node_name="ParameterDeclaration")
    g.rule("ParameterDeclaration",
           ["DeclarationSpecifiers", "AbstractDeclarator"],
           node_name="ParameterDeclaration")
    g.rule("ParameterDeclaration", ["DeclarationSpecifiers"],
           node_name="ParameterDeclaration")
    g.rule("IdentifierList",
           ["IdentifierList", "Comma", "IDENTIFIER"], build=L)
    g.rule("IdentifierList", ["IDENTIFIER"], build=L)

    g.rule("TypeName", ["SpecifierQualifierList"], node_name="TypeName")
    g.rule("TypeName", ["SpecifierQualifierList", "AbstractDeclarator"],
           node_name="TypeName")
    g.rule("AbstractDeclarator", ["Pointer"], build=P)
    g.rule("AbstractDeclarator", ["Pointer", "DirectAbstractDeclarator"],
           node_name="PointerAbstractDeclarator")
    g.rule("AbstractDeclarator", ["DirectAbstractDeclarator"], build=P)
    g.rule("DirectAbstractDeclarator",
           ["(", "AbstractDeclarator", ")"], build=P)
    g.rule("DirectAbstractDeclarator", ["[", "]"],
           node_name="ArrayAbstractDeclarator")
    g.rule("DirectAbstractDeclarator",
           ["[", "ConditionalExpression", "]"],
           node_name="ArrayAbstractDeclarator")
    g.rule("DirectAbstractDeclarator",
           ["DirectAbstractDeclarator", "[", "]"],
           node_name="ArrayAbstractDeclarator")
    g.rule("DirectAbstractDeclarator",
           ["DirectAbstractDeclarator", "[", "ConditionalExpression", "]"],
           node_name="ArrayAbstractDeclarator")
    g.rule("DirectAbstractDeclarator", ["(", ")"],
           node_name="FunctionAbstractDeclarator")
    g.rule("DirectAbstractDeclarator", ["(", "ParameterTypeList", ")"],
           node_name="FunctionAbstractDeclarator")
    g.rule("DirectAbstractDeclarator",
           ["DirectAbstractDeclarator", "(", ")"],
           node_name="FunctionAbstractDeclarator")
    g.rule("DirectAbstractDeclarator",
           ["DirectAbstractDeclarator", "(", "ParameterTypeList", ")"],
           node_name="FunctionAbstractDeclarator")

    # -- initializers ---------------------------------------------------------------
    g.rule("Initializer", ["AssignmentExpression"], build=P)
    g.rule("Initializer", ["{", "InitializerList", "CommaOpt", "}"],
           node_name="CompoundInitializer")
    g.rule("Initializer", ["{", "}"], node_name="CompoundInitializer")
    g.rule("InitializerList",
           ["InitializerList", "Comma", "InitializerListMember"],
           build=L)
    g.rule("InitializerList", ["InitializerListMember"], build=L)
    g.rule("InitializerListMember", ["Initializer"], build=P)
    g.rule("InitializerListMember", ["Designation", "Initializer"],
           node_name="DesignatedInitializer")
    g.rule("Designation", ["DesignatorList", "="], build=P)
    g.rule("DesignatorList", ["DesignatorList", "Designator"], build=L)
    g.rule("DesignatorList", ["Designator"], build=L)
    g.rule("Designator", ["[", "ConditionalExpression", "]"],
           node_name="ArrayDesignator")
    g.rule("Designator", [".", "IDENTIFIER"],
           node_name="MemberDesignator")

    # -- statements -----------------------------------------------------------------
    g.rule("Statement", ["LabeledStatement"], build=P)
    g.rule("Statement", ["CompoundStatement"], build=P)
    g.rule("Statement", ["ExpressionStatement"], build=P)
    g.rule("Statement", ["SelectionStatement"], build=P)
    g.rule("Statement", ["IterationStatement"], build=P)
    g.rule("Statement", ["JumpStatement"], build=P)
    g.rule("Statement", ["AsmStatement"], build=P)

    g.rule("LabeledStatement", ["IDENTIFIER", ":", "Statement"],
           node_name="LabeledStatement")
    g.rule("LabeledStatement",
           ["case", "ConditionalExpression", ":", "Statement"],
           node_name="CaseStatement")
    # GNU case ranges: case 1 ... 5:
    g.rule("LabeledStatement",
           ["case", "ConditionalExpression", "...",
            "ConditionalExpression", ":", "Statement"],
           node_name="CaseRangeStatement")
    g.rule("LabeledStatement", ["default", ":", "Statement"],
           node_name="DefaultStatement")

    # Scope brackets run semantic actions via the context plug-in; the
    # engines call on_reduce for every production, so plain productions
    # with recognizable names suffice.
    g.rule("CompoundStatement", ["ScopePush", "BlockItemList",
                                 "ScopePop"],
           node_name="CompoundStatement")
    g.rule("CompoundStatement", ["ScopePush", "ScopePop"],
           node_name="CompoundStatement")
    # Scope brackets keep their tokens (refactorings need them); their
    # reductions drive push/pop in the context plug-in.
    g.rule("ScopePush", ["{"], build=P)
    g.rule("ScopePop", ["}"], build=P)
    g.rule("BlockItemList", ["BlockItemList", "BlockItem"], build=L)
    g.rule("BlockItemList", ["BlockItem"], build=L)
    g.rule("BlockItem", ["Declaration"], build=P)
    g.rule("BlockItem", ["Statement"], build=P)
    # GNU local labels.
    g.rule("BlockItem", ["__label__", "IdentifierList", ";"],
           node_name="LocalLabelDeclaration")

    g.rule("ExpressionStatement", ["Expression", ";"],
           node_name="ExpressionStatement")
    g.rule("ExpressionStatement", [";"], node_name="EmptyStatement")

    g.rule("SelectionStatement",
           ["if", "(", "Expression", ")", "Statement"],
           node_name="IfStatement")
    g.rule("SelectionStatement",
           ["if", "(", "Expression", ")", "Statement", "else",
            "Statement"],
           node_name="IfElseStatement")
    g.rule("SelectionStatement",
           ["switch", "(", "Expression", ")", "Statement"],
           node_name="SwitchStatement")

    g.rule("IterationStatement",
           ["while", "(", "Expression", ")", "Statement"],
           node_name="WhileStatement")
    g.rule("IterationStatement",
           ["do", "Statement", "while", "(", "Expression", ")", ";"],
           node_name="DoStatement")
    g.rule("IterationStatement",
           ["for", "(", "ExpressionOpt", ";", "ExpressionOpt", ";",
            "ExpressionOpt", ")", "Statement"],
           node_name="ForStatement")
    g.rule("IterationStatement",
           ["for", "(", "Declaration", "ExpressionOpt", ";",
            "ExpressionOpt", ")", "Statement"],
           node_name="ForStatement")  # C99 for-declaration
    g.rule("ExpressionOpt", ["Expression"], build=P)
    g.rule("ExpressionOpt", [], build=Y)

    g.rule("JumpStatement", ["goto", "IDENTIFIER", ";"],
           node_name="GotoStatement")
    g.rule("JumpStatement", ["goto", "*", "CastExpression", ";"],
           node_name="ComputedGotoStatement")  # GNU
    g.rule("JumpStatement", ["continue", ";"],
           node_name="ContinueStatement")
    g.rule("JumpStatement", ["break", ";"], node_name="BreakStatement")
    g.rule("JumpStatement", ["return", ";"], node_name="ReturnStatement")
    g.rule("JumpStatement", ["return", "Expression", ";"],
           node_name="ReturnStatement")

    # GNU inline assembly (statement and file-scope forms).
    g.rule("AsmStatement", ["AsmKeyword", "(", "AsmArguments", ")", ";"],
           node_name="AsmStatement")
    g.rule("AsmStatement",
           ["AsmKeyword", "volatile", "(", "AsmArguments", ")", ";"],
           node_name="AsmStatement")
    g.rule("AsmDefinition", ["AsmKeyword", "(", "AsmArguments", ")", ";"],
           node_name="AsmDefinition")
    g.rule("AsmKeyword", ["asm"], build=Y)
    g.rule("AsmArguments", ["StringLiteral"], build=L)
    g.rule("AsmArguments", ["AsmArguments", ":", "AsmOperandsOpt"],
           build=L)
    g.rule("AsmOperandsOpt", [], build=Y)
    g.rule("AsmOperandsOpt", ["AsmOperands"], build=P)
    g.rule("AsmOperands", ["AsmOperands", "Comma", "AsmOperand"],
           build=L)
    g.rule("AsmOperands", ["AsmOperand"], build=L)
    g.rule("AsmOperand", ["StringLiteral", "(", "Expression", ")"],
           node_name="AsmOperand")

    # -- attributes (GNU) --------------------------------------------------------------
    g.rule("AttributeSpecifier",
           ["__attribute__", "(", "(", "AttributeParams", ")", ")"],
           node_name="Attribute")
    g.rule("AttributeList", [], build=Y)
    g.rule("AttributeList", ["AttributeList", "AttributeSpecifier"],
           build=L)
    g.rule("AttributeParams", [], build=Y)
    g.rule("AttributeParams", ["AttributeParams", "Comma", "AttrItem"],
           build=L)
    g.rule("AttributeParams", ["AttrItem"], build=L)
    g.rule("AttrItem", ["AttrWord"], build=P)
    g.rule("AttrItem", ["AttrWord", "(", "ArgumentExpressionList", ")"],
           node_name="AttrCall")
    g.rule("AttrItem", ["AttrWord", "(", ")"], node_name="AttrCall")
    g.rule("AttrWord", ["IDENTIFIER"], build=P)
    g.rule("AttrWord", ["const"], build=P)

    # -- expressions ----------------------------------------------------------------------
    g.rule("Expression", ["AssignmentExpression"], build=P)
    g.rule("Expression", ["Expression", "Comma", "AssignmentExpression"],
           node_name="CommaExpression")

    g.rule("AssignmentExpression", ["ConditionalExpression"], build=P)
    for op in ("=", "*=", "/=", "%=", "+=", "-=", "<<=", ">>=", "&=",
               "^=", "|="):
        g.rule("AssignmentExpression",
               ["UnaryExpression", op, "AssignmentExpression"],
               node_name="AssignmentExpression")

    g.rule("ConditionalExpression", ["LogicalOrExpression"], build=P)
    g.rule("ConditionalExpression",
           ["LogicalOrExpression", "?", "Expression", ":",
            "ConditionalExpression"],
           node_name="ConditionalExpression")
    g.rule("ConditionalExpression",
           ["LogicalOrExpression", "?", ":", "ConditionalExpression"],
           node_name="ConditionalExpression")  # GNU x ?: y

    binary_levels = [
        ("LogicalOrExpression", "LogicalAndExpression", ["||"]),
        ("LogicalAndExpression", "InclusiveOrExpression", ["&&"]),
        ("InclusiveOrExpression", "ExclusiveOrExpression", ["|"]),
        ("ExclusiveOrExpression", "AndExpression", ["^"]),
        ("AndExpression", "EqualityExpression", ["&"]),
        ("EqualityExpression", "RelationalExpression", ["==", "!="]),
        ("RelationalExpression", "ShiftExpression",
         ["<", ">", "<=", ">="]),
        ("ShiftExpression", "AdditiveExpression", ["<<", ">>"]),
        ("AdditiveExpression", "MultiplicativeExpression", ["+", "-"]),
        ("MultiplicativeExpression", "CastExpression", ["*", "/", "%"]),
    ]
    for lhs, rhs, ops in binary_levels:
        g.rule(lhs, [rhs], build=P)
        for op in ops:
            g.rule(lhs, [lhs, op, rhs], node_name="BinaryExpression")

    g.rule("CastExpression", ["UnaryExpression"], build=P)
    g.rule("CastExpression", ["(", "TypeName", ")", "CastExpression"],
           node_name="CastExpression")

    g.rule("UnaryExpression", ["PostfixExpression"], build=P)
    g.rule("UnaryExpression", ["++", "UnaryExpression"],
           node_name="PreIncrement")
    g.rule("UnaryExpression", ["--", "UnaryExpression"],
           node_name="PreDecrement")
    for op in ("&", "*", "+", "-", "~", "!"):
        g.rule("UnaryExpression", [op, "CastExpression"],
               node_name="UnaryExpression")
    g.rule("UnaryExpression", ["sizeof", "UnaryExpression"],
           node_name="SizeofExpression")
    g.rule("UnaryExpression", ["sizeof", "(", "TypeName", ")"],
           node_name="SizeofType")
    g.rule("UnaryExpression", ["__alignof__", "UnaryExpression"],
           node_name="AlignofExpression")
    g.rule("UnaryExpression", ["__alignof__", "(", "TypeName", ")"],
           node_name="AlignofType")
    g.rule("UnaryExpression", ["__extension__", "CastExpression"],
           build=P)
    g.rule("UnaryExpression", ["&&", "IDENTIFIER"],
           node_name="LabelAddress")  # GNU computed goto

    g.rule("PostfixExpression", ["PrimaryExpression"], build=P)
    g.rule("PostfixExpression",
           ["PostfixExpression", "[", "Expression", "]"],
           node_name="SubscriptExpression")
    g.rule("PostfixExpression", ["PostfixExpression", "(", ")"],
           node_name="FunctionCall")
    g.rule("PostfixExpression",
           ["PostfixExpression", "(", "ArgumentExpressionList", ")"],
           node_name="FunctionCall")
    g.rule("PostfixExpression",
           ["PostfixExpression", ".", "MemberName"],
           node_name="DirectSelection")
    g.rule("PostfixExpression",
           ["PostfixExpression", "->", "MemberName"],
           node_name="IndirectSelection")
    g.rule("PostfixExpression", ["PostfixExpression", "++"],
           node_name="PostIncrement")
    g.rule("PostfixExpression", ["PostfixExpression", "--"],
           node_name="PostDecrement")
    # C99 compound literal.
    g.rule("PostfixExpression",
           ["(", "TypeName", ")", "{", "InitializerList", "CommaOpt",
            "}"],
           node_name="CompoundLiteral")
    g.rule("PostfixExpression",
           ["__builtin_va_arg", "(", "AssignmentExpression", "Comma",
            "TypeName", ")"],
           node_name="VaArg")
    g.rule("PostfixExpression",
           ["__builtin_offsetof", "(", "TypeName", "Comma",
            "OffsetofDesignator", ")"],
           node_name="OffsetofExpression")
    g.rule("OffsetofDesignator", ["IDENTIFIER"], build=L)
    g.rule("OffsetofDesignator",
           ["OffsetofDesignator", ".", "IDENTIFIER"], build=L)
    g.rule("OffsetofDesignator",
           ["OffsetofDesignator", "[", "Expression", "]"], build=L)
    g.rule("MemberName", ["IDENTIFIER"], build=P)
    g.rule("MemberName", ["TYPEDEF_NAME"], build=P)

    g.rule("ArgumentExpressionList",
           ["ArgumentExpressionList", "Comma", "AssignmentExpression"],
           build=L)
    g.rule("ArgumentExpressionList", ["AssignmentExpression"], build=L)

    g.rule("PrimaryExpression", ["IDENTIFIER"], build=P)
    g.rule("PrimaryExpression", ["CONSTANT"], build=P)
    g.rule("PrimaryExpression", ["StringLiteral"], build=P)
    g.rule("PrimaryExpression", ["(", "Expression", ")"], build=P)
    # GNU statement expression.
    g.rule("PrimaryExpression", ["(", "CompoundStatement", ")"],
           node_name="StatementExpression")
    # Adjacent string literals concatenate.
    g.rule("StringLiteral", ["StringLiteral", "STRING"], build=L)
    g.rule("StringLiteral", ["STRING"], build=L)

    g.rule("Comma", [","], build=Y)

    # -- complete syntactic units (§5.1) ------------------------------------------
    g.mark_complete(
        "TranslationUnit", "ExternalDeclarationList",
        "ExternalDeclaration", "FunctionDefinition", "Declaration",
        "Statement", "BlockItem", "BlockItemList", "CompoundStatement",
        "ExpressionStatement", "SelectionStatement",
        "IterationStatement", "JumpStatement", "LabeledStatement",
        "Expression", "AssignmentExpression", "ConditionalExpression",
        "ExpressionOpt",
        # members of commonly configured lists:
        "ParameterDeclaration", "ParameterList", "ParameterTypeList",
        "StructDeclaration", "StructDeclarationList",
        "StructDeclarator", "StructDeclaratorList",
        "Enumerator", "EnumeratorList",
        "Initializer", "InitializerList", "InitializerListMember",
        "InitDeclarator", "InitDeclaratorList",
        "ArgumentExpressionList", "DeclarationSpecifiers",
        "DeclarationSpecifier", "AttributeSpecifier",
        "AttributeSpecifiers", "AttributeParams",
        "AttrItem", "IdentifierList",
    )
    return g
