"""Synthetic Linux-like kernel corpus (the evaluation substrate)."""

from repro.corpus.generator import (KernelCorpus, KernelSpec,
                                    generate_kernel)

__all__ = ["KernelCorpus", "KernelSpec", "generate_kernel"]
