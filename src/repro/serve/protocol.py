"""Transport-agnostic protocol core: one request model, one codec.

The daemon grew two network surfaces — the newline-delimited JSON
socket dialect (PR 6) and the HTTP/JSON frontend — and both must mean
exactly the same thing by ``parse``, ``invalidate``, ``stats``,
``shed``, and every error.  This module is where that meaning lives,
defined once:

* **Typed requests.**  :class:`ParseRequest`, :class:`InvalidateRequest`,
  :class:`StatsRequest`, :class:`ShutdownRequest`, :class:`PingRequest`
  — one class per op, each with ``from_wire`` validation and a
  ``to_wire`` serializer.  :func:`decode_request` is the single entry
  point both transports call; a malformed payload raises
  :class:`ProtocolError` carrying the request ``id`` so the error
  envelope can still be matched by the client.
* **One status taxonomy.**  The engine's unit statuses
  (``ok``/``degraded``/``parse-failed``/``error``/``timeout``/
  ``crashed``) plus the service-level ones (``shed`` — refused by
  admission control; ``unavailable`` — the daemon could not be reached)
  and the single :data:`HTTP_STATUS_CODES` mapping that gives each a
  meaningful HTTP code (200/422/429/503/504).
* **One response envelope.**  :func:`reply` / :func:`error_reply` /
  :func:`shed_reply` / :func:`timeout_reply` / :func:`unavailable_reply`
  build every response both transports emit, so the shape
  (``id``/``op``/``status``/``error``) can never drift between them.
* **Worker wire.**  The pool's parent↔child pipe frames ride the same
  codec: :class:`WorkerParse` / :class:`WorkerPing` / :class:`WorkerExit`
  with :func:`decode_worker`, instead of a second ad-hoc dict dialect.

The module is deliberately shallow: it imports only the engine's
status constants, so every transport (and the client) can depend on it
without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Type

from repro.engine.results import (STATUS_CRASHED, STATUS_DEGRADED,
                                  STATUS_ERROR, STATUS_OK,
                                  STATUS_PARSE_FAILED, STATUS_TIMEOUT)

PROTOCOL_VERSION = 1

# Service-level statuses, alongside the engine's unit statuses: the
# request was refused by admission control and no work was done ...
STATUS_SHED = "shed"
# ... or the daemon could not be reached within the client's retry
# budget (a client-side answer; the server never emits it).
STATUS_UNAVAILABLE = "unavailable"

# Every status a response envelope may carry, engine and service side.
STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_PARSE_FAILED,
            STATUS_ERROR, STATUS_TIMEOUT, STATUS_CRASHED, STATUS_SHED,
            STATUS_UNAVAILABLE)

# Failure records describe one attempt, not the unit: publishing them
# to the warm tiers would pin a transient crash/timeout as the unit's
# answer.  Mirrors the batch engine's non-caching of retryable states.
UNCACHEABLE_STATUSES = (STATUS_ERROR, STATUS_TIMEOUT, STATUS_CRASHED)

# The one status -> HTTP code mapping, shared by the HTTP frontend and
# its client.  ok/degraded are usable answers (200); parse-failed and
# error describe the request's content (422); shed is back-pressure
# (429, retry later); timeout is an upstream deadline (504); crashed
# and unavailable mean the service itself is in trouble (503).
HTTP_STATUS_CODES: Dict[str, int] = {
    STATUS_OK: 200,
    STATUS_DEGRADED: 200,
    STATUS_PARSE_FAILED: 422,
    STATUS_ERROR: 422,
    STATUS_SHED: 429,
    STATUS_TIMEOUT: 504,
    STATUS_CRASHED: 503,
    STATUS_UNAVAILABLE: 503,
}


def http_status(status: Optional[str]) -> int:
    """HTTP code for a response envelope's ``status`` (500 unknown)."""
    return HTTP_STATUS_CODES.get(status or "", 500)


# op -> (HTTP method, route).  Part of the protocol, not of either
# side: the HTTP frontend derives its routing table from this and the
# HTTP client transport derives its request lines, so they can never
# disagree about where an op lives.
HTTP_ROUTES: Dict[str, Tuple[str, str]] = {
    "parse": ("POST", "/v1/parse"),
    "invalidate": ("POST", "/v1/invalidate"),
    "stats": ("GET", "/v1/stats"),
    "ping": ("GET", "/v1/ping"),
    "shutdown": ("POST", "/v1/shutdown"),
}


class ProtocolError(ValueError):
    """A request failed validation before any work was done.

    Carries the offending payload's ``id``/``op`` so transports can
    still answer with a matchable error envelope.
    """

    def __init__(self, message: str, request_id: Any = None,
                 op: Optional[str] = None):
        super().__init__(message)
        self.request_id = request_id
        self.op = op


# -- requests ----------------------------------------------------------


class Request:
    """Base of every typed request; ``op`` names the operation."""

    op: str = ""
    __slots__ = ("id",)

    def __init__(self, id: Any = None):  # noqa: A002 - wire name
        self.id = id

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "Request":
        return cls(id=payload.get("id"))

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"op": self.op}
        if self.id is not None:
            wire["id"] = self.id
        return wire

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id!r})"


class ParseRequest(Request):
    """Parse one unit: by ``path``, by ``text`` buffer, or both (an
    explicit buffer for a known path is an overlay edit).

    ``deadline`` (seconds) overrides the server default; ``fresh``
    skips every cache tier; ``delay`` is a testing aid (sleep before
    parsing, so smoke tests can pile up a burst deterministically).
    """

    op = "parse"
    __slots__ = ("path", "text", "filename", "deadline", "fresh",
                 "delay")

    def __init__(self, path: Optional[str] = None,
                 text: Optional[str] = None,
                 filename: Optional[str] = None,
                 deadline: Optional[float] = None,
                 fresh: bool = False,
                 delay: float = 0.0,
                 id: Any = None):  # noqa: A002
        super().__init__(id=id)
        if path is None and text is None:
            raise ProtocolError("parse needs path or text",
                                request_id=id, op=self.op)
        self.path = path
        self.text = text
        self.filename = filename
        self.deadline = deadline
        self.fresh = fresh
        self.delay = delay

    @property
    def unit(self) -> str:
        """The unit name the response will carry."""
        return self.path or self.filename or "<input>"

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ParseRequest":
        rid = payload.get("id")
        path = payload.get("path")
        text = payload.get("text")
        if path is not None and not isinstance(path, str):
            raise ProtocolError("parse path must be a string",
                                request_id=rid, op=cls.op)
        if text is not None and not isinstance(text, str):
            raise ProtocolError("parse text must be a string",
                                request_id=rid, op=cls.op)
        try:
            deadline = (float(payload["deadline"])
                        if payload.get("deadline") is not None else None)
            delay = float(payload.get("delay") or 0.0)
        except (TypeError, ValueError):
            raise ProtocolError("parse deadline/delay must be numbers",
                                request_id=rid, op=cls.op) from None
        return cls(path=path, text=text,
                   filename=payload.get("filename"),
                   deadline=deadline,
                   fresh=bool(payload.get("fresh")),
                   delay=delay, id=rid)

    def to_wire(self) -> Dict[str, Any]:
        wire = super().to_wire()
        for name in ("path", "text", "filename", "deadline"):
            value = getattr(self, name)
            if value is not None:
                wire[name] = value
        if self.fresh:
            wire["fresh"] = True
        if self.delay:
            wire["delay"] = self.delay
        return wire


class InvalidateRequest(Request):
    """Drop the warm entries of every unit whose closure reaches
    ``path``; ``text`` installs new content (in-memory overlay edit)."""

    op = "invalidate"
    __slots__ = ("path", "text")

    def __init__(self, path: str, text: Optional[str] = None,
                 id: Any = None):  # noqa: A002
        super().__init__(id=id)
        if not path or not isinstance(path, str):
            raise ProtocolError("invalidate needs a path",
                                request_id=id, op=self.op)
        self.path = path
        self.text = text

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "InvalidateRequest":
        rid = payload.get("id")
        text = payload.get("text")
        if text is not None and not isinstance(text, str):
            raise ProtocolError("invalidate text must be a string",
                                request_id=rid, op=cls.op)
        return cls(path=payload.get("path"), text=text, id=rid)

    def to_wire(self) -> Dict[str, Any]:
        wire = super().to_wire()
        wire["path"] = self.path
        if self.text is not None:
            wire["text"] = self.text
        return wire


class StatsRequest(Request):
    """Server statistics (control plane: answered inline, never
    queued)."""

    op = "stats"
    __slots__ = ()


class PingRequest(Request):
    """Liveness probe; answers the protocol version."""

    op = "ping"
    __slots__ = ()


class ShutdownRequest(Request):
    """Graceful draining shutdown: admitted work is served first."""

    op = "shutdown"
    __slots__ = ()


REQUEST_TYPES: Dict[str, Type[Request]] = {
    cls.op: cls for cls in (ParseRequest, InvalidateRequest,
                            StatsRequest, PingRequest, ShutdownRequest)
}

OPS: Tuple[str, ...] = tuple(REQUEST_TYPES)


def decode_request(payload: Any) -> Request:
    """Validate one wire payload into a typed request.

    Raises :class:`ProtocolError` (carrying the payload's ``id``) for
    anything malformed: not an object, unknown op, missing or
    mistyped fields.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got "
            f"{type(payload).__name__}")
    op = payload.get("op")
    cls = REQUEST_TYPES.get(op) if isinstance(op, str) else None
    if cls is None:
        raise ProtocolError(f"unknown op {op!r}",
                            request_id=payload.get("id"), op=op)
    return cls.from_wire(payload)


# -- the response envelope ---------------------------------------------


def reply(request_id: Any, op: Optional[str],
          **fields: Any) -> Dict[str, Any]:
    """The one response envelope: ``id`` + ``op`` + payload fields."""
    response: Dict[str, Any] = {"id": request_id, "op": op}
    response.update(fields)
    return response


def reply_to(request: Any, **fields: Any) -> Dict[str, Any]:
    """:func:`reply` addressed to a typed request or a raw payload."""
    if isinstance(request, Request):
        return reply(request.id, request.op, **fields)
    payload = request if isinstance(request, dict) else {}
    return reply(payload.get("id"), payload.get("op"), **fields)


def error_reply(request_id: Any, op: Optional[str],
                message: str) -> Dict[str, Any]:
    return reply(request_id, op, status=STATUS_ERROR, error=message)


def shed_reply(request_id: Any, op: Optional[str],
               reason: str) -> Dict[str, Any]:
    return reply(request_id, op, status=STATUS_SHED, error=reason)


def timeout_reply(request_id: Any, op: Optional[str],
                  message: str) -> Dict[str, Any]:
    return reply(request_id, op, status=STATUS_TIMEOUT, error=message)


def unavailable_reply(op: Optional[str], attempts: int,
                      error: Any) -> Dict[str, Any]:
    """Client-side: the daemon could not be reached; no work was
    done."""
    return reply(None, op, status=STATUS_UNAVAILABLE,
                 attempts=attempts,
                 error=f"{error} (after {attempts} attempts)")


# -- the worker wire (pool parent <-> forked child) --------------------


class WorkerRequest:
    """Base of the pool's parent->child pipe frames."""

    op: str = ""
    __slots__ = ()

    def to_wire(self) -> Dict[str, Any]:
        return {"op": self.op}


class WorkerParse(WorkerRequest):
    """One out-of-process parse: the unit, its text, and the overlay
    contents of its include closure (the child has no file store of
    its own to consult).

    ``chaos``/``chaos_seconds`` carry a fault-injection tag across the
    pipe — the supervisor arms it, the child acts it out.
    """

    op = "parse"
    __slots__ = ("unit", "text", "files", "chaos", "chaos_seconds")

    def __init__(self, unit: str, text: str,
                 files: Optional[Dict[str, str]] = None,
                 chaos: Optional[str] = None,
                 chaos_seconds: float = 0.0):
        self.unit = unit
        self.text = text
        self.files = files or {}
        self.chaos = chaos
        self.chaos_seconds = chaos_seconds

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"op": self.op, "unit": self.unit,
                                "text": self.text, "files": self.files}
        if self.chaos is not None:
            wire["_chaos"] = self.chaos
            wire["_chaos_seconds"] = self.chaos_seconds
        return wire


class WorkerPing(WorkerRequest):
    op = "ping"
    __slots__ = ()


class WorkerExit(WorkerRequest):
    op = "exit"
    __slots__ = ()


def decode_worker(payload: Any) -> Optional[WorkerRequest]:
    """Typed view of one worker-pipe frame; None for garbage (the
    child treats it like EOF and exits)."""
    if not isinstance(payload, dict):
        return None
    op = payload.get("op")
    if op == "exit":
        return WorkerExit()
    if op == "ping":
        return WorkerPing()
    if op == "parse":
        return WorkerParse(
            unit=payload.get("unit") or "<input>",
            text=payload.get("text") or "",
            files=payload.get("files") or {},
            chaos=payload.get("_chaos"),
            chaos_seconds=float(payload.get("_chaos_seconds") or 30.0))
    return None


def pong(rss_kb: int) -> Dict[str, Any]:
    """The child's heartbeat answer (carries its RSS for recycling)."""
    return {"op": "ping", "ok": True, "rss_kb": rss_kb}


__all__ = [
    "HTTP_ROUTES", "HTTP_STATUS_CODES", "InvalidateRequest", "OPS",
    "ParseRequest",
    "PingRequest", "PROTOCOL_VERSION", "ProtocolError", "Request",
    "REQUEST_TYPES", "STATUSES", "STATUS_CRASHED", "STATUS_DEGRADED",
    "STATUS_ERROR", "STATUS_OK", "STATUS_PARSE_FAILED", "STATUS_SHED",
    "STATUS_TIMEOUT", "STATUS_UNAVAILABLE", "ShutdownRequest",
    "StatsRequest", "UNCACHEABLE_STATUSES", "WorkerExit", "WorkerParse",
    "WorkerPing", "WorkerRequest", "decode_request", "decode_worker",
    "error_reply", "http_status", "pong", "reply", "reply_to",
    "shed_reply", "timeout_reply", "unavailable_reply",
]
