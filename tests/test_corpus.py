"""Tests for the synthetic kernel corpus: structure, parseability, and
sampled projection equivalence against the single-configuration
pipeline."""

import random

import pytest

from repro.baselines import GccLike
from repro.corpus import KernelSpec, generate_kernel
from repro.cpp import PreprocessorError, project as project_tree
from repro.superc import SuperC
from tests.support import assignment_for, ast_signature
from repro.parser.ast import project as ast_project


@pytest.fixture(scope="module")
def corpus():
    return generate_kernel(KernelSpec(subsystems=2,
                                      drivers_per_subsystem=2,
                                      figure6_entries=6))


@pytest.fixture(scope="module")
def superc(corpus):
    return SuperC(corpus.filesystem(),
                  include_paths=corpus.include_paths)


class TestStructure:
    def test_deterministic(self):
        spec = KernelSpec(seed=7, subsystems=2)
        assert generate_kernel(spec).files == \
            generate_kernel(spec).files

    def test_different_seeds_differ(self):
        one = generate_kernel(KernelSpec(seed=1, subsystems=2))
        two = generate_kernel(KernelSpec(seed=2, subsystems=2))
        assert one.files != two.files

    def test_manifest(self, corpus):
        assert len(corpus.units) == 4
        assert all(unit in corpus.files for unit in corpus.units)
        assert all(unit.endswith(".c") for unit in corpus.units)
        assert corpus.headers()
        assert "CONFIG_64BIT" in corpus.config_variables

    def test_core_headers_present(self, corpus):
        for header in ("include/linux/module.h",
                       "include/linux/kernel.h",
                       "include/linux/init.h",
                       "include/asm/bitsperlong.h"):
            assert header in corpus.files

    def test_scaled_spec(self):
        base = KernelSpec(subsystems=1, drivers_per_subsystem=1)
        bigger = base.scaled(3)
        assert bigger.drivers_per_subsystem == 3
        assert bigger.subsystems == 3

    def test_write_to_directory(self, corpus, tmp_path):
        corpus.write_to_directory(str(tmp_path))
        unit = corpus.units[0]
        on_disk = tmp_path.joinpath(*unit.split("/"))
        assert on_disk.read_text() == corpus.files[unit]
        assert (tmp_path / "include" / "linux" / "kernel.h").exists()

    def test_report_cli_on_written_corpus(self, corpus, tmp_path,
                                          capsys):
        from repro.tools import report_cli
        corpus.write_to_directory(str(tmp_path))
        code = report_cli.main([str(tmp_path), "-I", "include",
                                "--units", "drivers/input/*.c"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 3" in out

    def test_interaction_inventory(self, corpus):
        """The corpus must exercise every Table 1 interaction."""
        text = "\n".join(corpus.files.values())
        assert "##" in text                       # token pasting
        assert "#x" in text or "# x" in text      # stringification
        assert "#error" in text
        assert "ARCH_HEADER" in text              # computed include
        assert "BITS_PER_LONG" in text            # multiply-defined
        assert "NR_CPUS < 256" in text            # non-boolean
        assert "typedef" in text
        assert "__attribute__" in text


class TestParsing:
    def test_all_units_parse(self, corpus, superc):
        for unit in corpus.units:
            result = superc.parse_file(unit)
            assert result.ok, (unit,
                               [str(f) for f in result.failures][:3])

    def test_variability_preserved(self, corpus, superc):
        result = superc.parse_file(corpus.units[0])
        # The AST must cover many configurations.
        assert result.parse.stats.max_subparsers >= 2
        assert result.unit.stats.conditionals > 10

    def test_error_configs_recorded(self, corpus, superc):
        result = superc.parse_file(corpus.units[0])
        assert len(result.unit.error_conditions) == 1

    def test_preprocessor_stats_populated(self, corpus, superc):
        result = superc.parse_file(corpus.units[0])
        stats = result.unit.stats
        assert stats.macro_definitions > 20
        assert stats.invocations > 10
        assert stats.includes >= 9
        assert stats.reincluded_headers >= 1
        assert stats.computed_includes >= 1
        assert stats.token_pastings >= 1
        assert stats.stringifications >= 1
        assert stats.non_boolean_expressions >= 1
        assert stats.hoisted_invocations >= 1


class TestProjectionEquivalence:
    """Sampled configurations: SuperC projected = gcc-like pipeline."""

    def sample_configs(self, corpus, rng, count):
        for _ in range(count):
            config = {}
            for name in corpus.config_variables:
                if rng.random() < 0.4:
                    config[name] = "1"
            yield config

    def test_sampled_configs_match(self, corpus, superc):
        rng = random.Random(0)
        unit = corpus.units[0]
        result = superc.parse_file(unit)
        assert result.ok
        source = corpus.files[unit]
        for config in self.sample_configs(corpus, rng, 6):
            assignment = assignment_for(result.unit, config)
            feasible = result.unit.feasible_condition.evaluate(
                assignment)
            gcc = GccLike(corpus.filesystem(),
                          include_paths=corpus.include_paths,
                          config=config)
            if not feasible:
                with pytest.raises(PreprocessorError):
                    gcc.compile_source(source, unit)
                continue
            baseline = gcc.compile_source(source, unit)
            # Token-level projection equivalence.
            projected = project_tree(result.unit.tree, assignment)
            assert [t.text for t in projected] == \
                [t.text for t in baseline.tokens]
            # AST-level projection equivalence.
            projected_ast = ast_project(result.ast, assignment)
            assert ast_signature(projected_ast) == \
                ast_signature(baseline.ast)

    def test_all_units_one_config(self, corpus, superc):
        config = {"CONFIG_64BIT": "1", "CONFIG_SMP": "1"}
        for unit in corpus.units:
            result = superc.parse_file(unit)
            assignment = assignment_for(result.unit, config)
            if not result.unit.feasible_condition.evaluate(assignment):
                continue
            gcc = GccLike(corpus.filesystem(),
                          include_paths=corpus.include_paths,
                          config=config)
            baseline = gcc.compile_source(corpus.files[unit], unit)
            projected = project_tree(result.unit.tree, assignment)
            assert [t.text for t in projected] == \
                [t.text for t in baseline.tokens], unit
