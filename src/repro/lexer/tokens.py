"""Token representation shared by the lexer, preprocessor, and parser.

The lexer annotates every token with the layout (whitespace and
comments) that precedes it, so that automated refactorings can restore
source text (Table 1, "Layout" row).  The preprocessor additionally
attaches line/warning/pragma directives as annotations rather than
passing them to the parser.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple


class TokenKind(enum.Enum):
    """Lexical classes produced by the lexer.

    Keywords are lexed as IDENTIFIER; the parser front-end classifies
    them (and typedef names, via the context plug-in) into grammar
    terminals.  This matters for the preprocessor, where any identifier
    — including C keywords — may be a macro name.
    """

    IDENTIFIER = "identifier"
    NUMBER = "number"              # a C preprocessing number
    CHARACTER = "character"        # character constant, incl. L'x'
    STRING = "string"              # string literal, incl. L"x"
    PUNCTUATOR = "punctuator"
    HASH = "hash"                  # '#' introducing a directive or stringify
    HASHHASH = "hashhash"          # '##' token pasting
    NEWLINE = "newline"            # end of a logical line
    EOF = "eof"
    OTHER = "other"                # any unrecognized character
    # Parser-internal kinds:
    TYPEDEF_NAME = "typedef-name"  # produced by reclassify, never the lexer
    PLACEMENT = "placement"        # internal marker token


class Token:
    """One lexical token with position and layout information."""

    __slots__ = ("kind", "text", "file", "line", "col", "layout",
                 "annotations", "no_expand", "version")

    def __init__(self, kind: TokenKind, text: str, file: str = "<input>",
                 line: int = 1, col: int = 1, layout: str = "",
                 annotations: Optional[Tuple[str, ...]] = None,
                 no_expand: Optional[frozenset] = None,
                 version: int = 0):
        self.kind = kind
        self.text = text
        self.file = file
        self.line = line
        self.col = col
        self.layout = layout
        self.annotations = annotations or ()
        # The "hide set" used to prevent recursive macro expansion; a
        # frozenset of macro names this token must not expand as.
        self.no_expand = no_expand or frozenset()
        # Macro-table version at which this token entered the stream;
        # expansion is deferred, so lookups must replay table history.
        self.version = version

    # -- derived views -------------------------------------------------

    @property
    def has_space_before(self) -> bool:
        """True if any whitespace or comment precedes this token."""
        return bool(self.layout)

    def is_identifier(self, text: Optional[str] = None) -> bool:
        if self.kind is not TokenKind.IDENTIFIER:
            return False
        return text is None or self.text == text

    def is_punctuator(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCTUATOR and self.text == text

    # -- copying -------------------------------------------------------

    def with_layout(self, layout: str) -> "Token":
        clone = self.copy()
        clone.layout = layout
        return clone

    def with_no_expand(self, names: frozenset) -> "Token":
        clone = self.copy()
        clone.no_expand = names
        return clone

    def with_annotations(self, annotations: Tuple[str, ...]) -> "Token":
        clone = self.copy()
        clone.annotations = self.annotations + annotations
        return clone

    def copy(self) -> "Token":
        return Token(self.kind, self.text, self.file, self.line, self.col,
                     self.layout, self.annotations, self.no_expand,
                     self.version)

    # -- equality: structural on kind+text (positions differ after
    #    expansion, and the FMLR merge rule compares token identity by
    #    stream position, not by this) ---------------------------------

    def same_text(self, other: "Token") -> bool:
        return self.kind is other.kind and self.text == other.text

    def __repr__(self) -> str:
        return (f"Token({self.kind.value!r}, {self.text!r}, "
                f"{self.file}:{self.line}:{self.col})")


def render_tokens(tokens: List[Token], with_layout: bool = True) -> str:
    """Reassemble tokens into program text.

    With ``with_layout`` the original whitespace/comments are restored;
    without it, a single space separates tokens that would otherwise
    glue together into a different token.
    """
    parts: List[str] = []
    previous: Optional[Token] = None
    for token in tokens:
        if token.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            if with_layout and token.layout:
                parts.append(token.layout)
            if token.kind is TokenKind.NEWLINE:
                parts.append("\n")
            previous = None
            continue
        if with_layout and token.layout:
            parts.append(token.layout)
        elif previous is not None and _needs_space(previous, token):
            parts.append(" ")
        parts.append(token.text)
        previous = token
    return "".join(parts)


def _needs_space(left: Token, right: Token) -> bool:
    """Conservative token-glue check for layout-free rendering."""
    wordy = (TokenKind.IDENTIFIER, TokenKind.NUMBER, TokenKind.TYPEDEF_NAME)
    if left.kind in wordy and right.kind in wordy:
        return True
    # An identifier glued onto a literal can form a prefixed literal
    # (`L` + `"x"` -> the wide string `L"x"`).
    if left.kind in wordy and right.kind in (TokenKind.STRING,
                                             TokenKind.CHARACTER):
        return True
    if not left.text or not right.text:
        return False
    # Avoid creating multi-character punctuators (e.g. '+' '+' -> '++',
    # '<' '=' -> '<=') or pasting a number suffix onto an identifier.
    if left.kind is TokenKind.NUMBER and right.text[0] in ".+-":
        return True
    # '.' before a digit would lex as one pp-number ('.' '0' -> '.0').
    if left.text.endswith(".") and right.kind is TokenKind.NUMBER:
        return True
    glue_risk = "+-<>=&|#.*/%^!:"
    return left.text[-1] in glue_risk and right.text[0] in glue_risk
